package interp_test

import (
	"testing"

	"gadt/internal/paper"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func analyzeSrc(t *testing.T, src string) *sem.Info {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestCallUnitFunction(t *testing.T) {
	info := analyzeSrc(t, paper.Sqrtest)
	dec := info.LookupRoutine("decrement")
	it := interp.New(info, interp.Config{})
	ci, err := it.CallUnit(dec, []interp.Value{interp.IntV(3)})
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := ci.Result.AsInt(); r != 4 { // buggy decrement: 3 + 1
		t.Errorf("result = %v, want 4", ci.Result)
	}
	if len(ci.Ins) != 1 || !interp.ValuesEqual(ci.Ins[0].Value, interp.IntV(3)) {
		t.Errorf("ins = %v", ci.Ins)
	}
}

func TestCallUnitProcedureWithVarParam(t *testing.T) {
	info := analyzeSrc(t, paper.Sqrtest)
	arrsum := info.LookupRoutine("arrsum")
	it := interp.New(info, interp.Config{})
	arr := &interp.ArrayVal{Lo: 1, Hi: 10, Elems: make([]interp.Value, 10)}
	for i := range arr.Elems {
		arr.Elems[i] = interp.IntV(0)
	}
	arr.Elems[0], arr.Elems[1], arr.Elems[2] = interp.IntV(4), interp.IntV(5), interp.IntV(6)
	ci, err := it.CallUnit(arrsum, []interp.Value{interp.ArrV(arr), interp.IntV(3), interp.IntV(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ci.Outs) != 1 || !interp.ValuesEqual(ci.Outs[0].Value, interp.IntV(15)) {
		t.Errorf("outs = %v, want b: 15", ci.Outs)
	}
}

func TestCallUnitArgCountMismatch(t *testing.T) {
	info := analyzeSrc(t, paper.Sqrtest)
	dec := info.LookupRoutine("decrement")
	it := interp.New(info, interp.Config{})
	if _, err := it.CallUnit(dec, nil); err == nil {
		t.Error("expected argument-count error")
	}
}

func TestCallUnitNestedRoutine(t *testing.T) {
	// A nested routine with no free references is callable standalone
	// (the transformed-program case the oracle relies on).
	info := analyzeSrc(t, `
program t;
procedure outer(x: integer; var r: integer);
  procedure inner(a: integer; var b: integer);
  begin
    b := a * 3;
  end;
begin
  inner(x, r);
end;
var y: integer;
begin
  outer(2, y);
end.`)
	inner := info.LookupRoutine("inner")
	it := interp.New(info, interp.Config{})
	ci, err := it.CallUnit(inner, []interp.Value{interp.IntV(5), interp.IntV(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ci.Outs) != 1 || !interp.ValuesEqual(ci.Outs[0].Value, interp.IntV(15)) {
		t.Errorf("outs = %v, want b: 15", ci.Outs)
	}
}

func TestCallUnitRuntimeError(t *testing.T) {
	info := analyzeSrc(t, `
program t;
procedure boom(d: integer; var r: integer);
begin
  r := 1 div d;
end;
var x: integer;
begin
  boom(1, x);
end.`)
	boom := info.LookupRoutine("boom")
	it := interp.New(info, interp.Config{})
	if _, err := it.CallUnit(boom, []interp.Value{interp.IntV(0), interp.IntV(0)}); err == nil {
		t.Error("expected division-by-zero error")
	}
}
