package parser_test

import (
	"os"
	"path/filepath"
	"testing"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
)

// FuzzParser asserts the parser never panics on arbitrary input and
// that every node of a successfully parsed program carries a sane
// source position (line and column at least 1).
func FuzzParser(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "..", "testdata", "*.pas"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no testdata/*.pas seeds found")
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("program p; begin end.")
	f.Add("program p; var x: integer; begin x := 1; writeln(x) end.")
	f.Add("program p begin if then else end")
	f.Add("begin end.")
	f.Add("")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.ParseProgram("fuzz.pas", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if prog == nil {
			t.Fatal("nil program without error")
		}
		ast.Inspect(prog, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if pos := n.Pos(); pos.Line < 1 || pos.Col < 1 {
				t.Fatalf("%T at non-positive position %v", n, pos)
			}
			return true
		})
	})
}
