package parser_test

import (
	"strings"
	"testing"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
)

func TestProgramParameters(t *testing.T) {
	// Classic `program t(input, output);` headers parse and are ignored.
	prog := parse(t, `program t(input, output); begin end.`)
	if prog.Name != "t" {
		t.Errorf("name = %q", prog.Name)
	}
}

func TestInContextualKeyword(t *testing.T) {
	prog := parse(t, `
program t;
procedure p(in a: integer; var b: integer);
begin
  b := a;
end;
var x: integer;
begin
  p(1, x);
end.`)
	params := prog.Block.Routines[0].Params
	if params[0].Mode != ast.Value {
		t.Errorf("in-param mode = %v, want value", params[0].Mode)
	}
}

func TestParamNamedInOrOut(t *testing.T) {
	// `in` / `out` remain usable as ordinary names when not followed by
	// an identifier (i.e. `out: integer` declares a parameter named out).
	prog := parse(t, `
program t;
procedure p(out: integer);
begin
end;
begin
  p(1);
end.`)
	params := prog.Block.Routines[0].Params
	if len(params) != 1 || params[0].Names[0] != "out" || params[0].Mode != ast.Value {
		t.Errorf("params = %+v", params[0])
	}
}

func TestNegativeConst(t *testing.T) {
	prog := parse(t, `
program t;
const low = -10;
var x: integer;
begin
  x := low;
end.`)
	if len(prog.Block.Consts) != 1 {
		t.Fatal("const missing")
	}
	if _, ok := prog.Block.Consts[0].Value.(*ast.UnaryExpr); !ok {
		t.Errorf("const value = %T", prog.Block.Consts[0].Value)
	}
}

func TestNestedRecordType(t *testing.T) {
	prog := parse(t, `
program t;
type
  inner = record a: integer end;
  outer = record i: inner; b: integer end;
var o: outer;
begin
  o.i.a := 1;
  o.b := 2;
end.`)
	if len(prog.Block.Types) != 2 {
		t.Fatalf("types = %d", len(prog.Block.Types))
	}
}

func TestEmptyStatementsDropped(t *testing.T) {
	prog := parse(t, `
program t;
var x: integer;
begin
  ;;
  x := 1;;
  ;
end.`)
	if len(prog.Block.Body.Stmts) != 1 {
		t.Errorf("stmts = %d, want 1 (empties dropped)", len(prog.Block.Body.Stmts))
	}
}

func TestSemicolonBeforeElseError(t *testing.T) {
	_, err := parser.ParseProgram("t.pas", `
program t;
var x: integer;
begin
  if x = 1 then
    x := 2;
  else
    x := 3;
end.`)
	// `;` before else is classic Pascal error territory: our parser
	// treats the else as orphaned and reports a syntax error.
	if err == nil {
		t.Error("expected error for ';' before else")
	}
}

func TestCaseWithoutElse(t *testing.T) {
	prog := parse(t, `
program t;
var x: integer;
begin
  case x of
    1: x := 10;
    2: x := 20;
  end;
end.`)
	cs := prog.Block.Body.Stmts[0].(*ast.CaseStmt)
	if cs.Else != nil || len(cs.Arms) != 2 {
		t.Errorf("case = %+v", cs)
	}
}

func TestErrorListFormatting(t *testing.T) {
	_, err := parser.ParseProgram("t.pas", `program t; begin x := ; y := ; end.`)
	if err == nil {
		t.Fatal("expected errors")
	}
	if !strings.Contains(err.Error(), "more error") && !strings.Contains(err.Error(), "expected") {
		t.Errorf("error list formatting: %v", err)
	}
}

func TestCheckNonEmpty(t *testing.T) {
	if parser.CheckNonEmpty("  \n\t ") == nil {
		t.Error("blank input accepted")
	}
	if parser.CheckNonEmpty("program t; begin end.") != nil {
		t.Error("non-blank input rejected")
	}
}

func TestDeclarationPartsInAnyOrder(t *testing.T) {
	// Our parser (liberally) allows var parts after routines.
	parse(t, `
program t;
procedure p;
begin
end;
var x: integer;
begin
  p;
  x := 1;
end.`)
}

func TestFunctionNoParams(t *testing.T) {
	prog := parse(t, `
program t;
function five: integer;
begin
  five := 5;
end;
var x: integer;
begin
  x := five;
end.`)
	f := prog.Block.Routines[0]
	if f.Kind != ast.FuncKind || len(f.Params) != 0 || f.Result == nil {
		t.Errorf("function form: %+v", f)
	}
}

func TestDeepExpressionNesting(t *testing.T) {
	expr := strings.Repeat("(", 40) + "1" + strings.Repeat(")", 40) + " + 2"
	if _, err := parser.ParseExpr(expr); err != nil {
		t.Errorf("deep nesting failed: %v", err)
	}
}
