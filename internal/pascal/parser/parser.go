// Package parser implements a recursive-descent parser for the GADT
// Pascal subset.
//
// The accepted grammar is classic Pascal restricted to the constructs the
// paper's method addresses: programs with nested procedures/functions,
// label/const/type/var declaration parts, value and var parameters,
// assignment, procedure calls, if/while/repeat/for/case, goto and labeled
// statements. Two extensions support the transformed internal form and
// the paper's driver notation: an `out` parameter mode (contextual
// keyword in parameter lists) and bracketed array displays `[1, 2]` in
// expression position.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/lexer"
	"gadt/internal/pascal/token"
)

// Error is a syntax error at a position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of syntax errors implementing error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Err returns nil when the list is empty, the list otherwise.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

const maxErrors = 20

// maxNestingDepth bounds statement/expression/type nesting. The parser
// is recursive-descent, so without a bound a few megabytes of "((((..."
// overflow the goroutine stack — a fatal runtime error that recover()
// cannot catch (found by fuzzing, pinned in fuzz_corpus_test.go).
const maxNestingDepth = 4096

// bailout is panicked when the error budget is exhausted.
type bailout struct{}

type parser struct {
	lex   *lexer.Lexer
	tok   token.Token
	next  token.Token
	errs  ErrorList
	depth int
}

// enter guards one level of recursive descent; every call must be
// paired with a deferred leave.
func (p *parser) enter(pos token.Pos) {
	p.depth++
	if p.depth > maxNestingDepth {
		p.errorf(pos, "nesting too deep (more than %d levels)", maxNestingDepth)
		panic(bailout{})
	}
}

func (p *parser) leave() { p.depth-- }

// ParseProgram parses a complete program. The returned ErrorList is
// non-nil iff errors were found; a partial tree may still be returned.
func ParseProgram(file, src string) (*ast.Program, error) {
	p := newParser(file, src)
	var prog *ast.Program
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(bailout); !ok {
					panic(r)
				}
			}
		}()
		prog = p.parseProgram()
	}()
	for _, e := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	return prog, p.errs.Err()
}

// ParseExpr parses a single expression (used by the assertion language
// and by driver tooling).
func ParseExpr(src string) (ast.Expr, error) {
	p := newParser("<expr>", src)
	var e ast.Expr
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(bailout); !ok {
					panic(r)
				}
				err = p.errs.Err()
			}
		}()
		e = p.parseExpr()
		if p.tok.Kind != token.EOF {
			p.errorf(p.tok.Pos, "unexpected %s after expression", p.tok)
		}
		return p.errs.Err()
	}()
	if err != nil {
		return nil, err
	}
	return e, nil
}

func newParser(file, src string) *parser {
	p := &parser{lex: lexer.New(file, src)}
	p.tok = p.lex.Next()
	p.next = p.lex.Next()
	return p
}

func (p *parser) advance() {
	p.tok = p.next
	p.next = p.lex.Next()
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	if len(p.errs) >= maxErrors {
		panic(bailout{})
	}
}

// expect consumes a token of the given kind, reporting an error and
// leaving the current token in place otherwise.
func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %q, found %s", k.String(), t)
		// Attempt minimal recovery: skip one stray token so that the
		// parser makes progress on common typos.
		if p.tok.Kind != token.EOF && p.next.Kind == k {
			p.advance()
			t = p.tok
		} else {
			return t
		}
	}
	p.advance()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectIdent() string {
	if p.tok.Kind != token.Ident {
		p.errorf(p.tok.Pos, "expected identifier, found %s", p.tok)
		return "?"
	}
	name := p.tok.Lit
	p.advance()
	return name
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) parseProgram() *ast.Program {
	pos := p.tok.Pos
	p.expect(token.Program)
	name := p.expectIdent()
	if p.accept(token.LParen) { // program parameters, e.g. (input, output)
		for p.tok.Kind == token.Ident {
			p.advance()
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RParen)
	}
	p.expect(token.Semi)
	blk := p.parseBlock()
	p.expect(token.Period)
	if p.tok.Kind != token.EOF {
		p.errorf(p.tok.Pos, "unexpected %s after end of program", p.tok)
	}
	return &ast.Program{ProgPos: pos, Name: name, Block: blk}
}

func (p *parser) parseBlock() *ast.Block {
	b := &ast.Block{BlockPos: p.tok.Pos}
	for {
		switch p.tok.Kind {
		case token.Label:
			p.advance()
			for {
				pos := p.tok.Pos
				if p.tok.Kind != token.IntLit && p.tok.Kind != token.Ident {
					p.errorf(pos, "expected label, found %s", p.tok)
					break
				}
				b.Labels = append(b.Labels, &ast.LabelDecl{DeclPos: pos, Name: p.tok.Lit})
				p.advance()
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.Semi)
		case token.Const:
			p.advance()
			for p.tok.Kind == token.Ident {
				pos := p.tok.Pos
				name := p.expectIdent()
				p.expect(token.Eq)
				val := p.parseExpr()
				p.expect(token.Semi)
				b.Consts = append(b.Consts, &ast.ConstDecl{DeclPos: pos, Name: name, Value: val})
			}
		case token.Type:
			p.advance()
			for p.tok.Kind == token.Ident {
				pos := p.tok.Pos
				name := p.expectIdent()
				p.expect(token.Eq)
				te := p.parseTypeExpr()
				p.expect(token.Semi)
				b.Types = append(b.Types, &ast.TypeDecl{DeclPos: pos, Name: name, Type: te})
			}
		case token.Var:
			p.advance()
			for p.tok.Kind == token.Ident {
				pos := p.tok.Pos
				names := p.parseIdentList()
				p.expect(token.Colon)
				te := p.parseTypeExpr()
				p.expect(token.Semi)
				b.Vars = append(b.Vars, &ast.VarDecl{DeclPos: pos, Names: names, Type: te})
			}
		case token.Procedure, token.Function:
			b.Routines = append(b.Routines, p.parseRoutine())
		case token.Begin:
			b.Body = p.parseCompound()
			return b
		default:
			p.errorf(p.tok.Pos, "expected declaration or begin, found %s", p.tok)
			if p.tok.Kind == token.EOF {
				b.Body = &ast.CompoundStmt{BeginPos: p.tok.Pos}
				return b
			}
			p.advance()
		}
	}
}

func (p *parser) parseIdentList() []string {
	var names []string
	names = append(names, p.expectIdent())
	for p.accept(token.Comma) {
		names = append(names, p.expectIdent())
	}
	return names
}

func (p *parser) parseRoutine() *ast.Routine {
	p.enter(p.tok.Pos)
	defer p.leave()
	pos := p.tok.Pos
	kind := ast.ProcKind
	if p.tok.Kind == token.Function {
		kind = ast.FuncKind
	}
	p.advance()
	name := p.expectIdent()
	r := &ast.Routine{DeclPos: pos, Kind: kind, Name: name}
	if p.tok.Kind == token.LParen {
		r.Params = p.parseParams()
	}
	if kind == ast.FuncKind {
		p.expect(token.Colon)
		r.Result = p.parseTypeExpr()
	}
	p.expect(token.Semi)
	r.Block = p.parseBlock()
	p.expect(token.Semi)
	return r
}

func (p *parser) parseParams() []*ast.Param {
	p.expect(token.LParen)
	var params []*ast.Param
	for {
		pos := p.tok.Pos
		mode := ast.Value
		switch {
		case p.tok.Kind == token.Var:
			mode = ast.VarMode
			p.advance()
		case p.tok.Kind == token.Ident && p.tok.Lit == "out" && p.next.Kind == token.Ident:
			// Contextual keyword for the transformed internal form.
			mode = ast.Out
			p.advance()
		case p.tok.Kind == token.Ident && p.tok.Lit == "in" && p.next.Kind == token.Ident:
			// Contextual keyword matching the paper's `in x: t` notation.
			p.advance()
		}
		names := p.parseIdentList()
		p.expect(token.Colon)
		te := p.parseTypeExpr()
		params = append(params, &ast.Param{DeclPos: pos, Mode: mode, Names: names, Type: te})
		if !p.accept(token.Semi) {
			break
		}
	}
	p.expect(token.RParen)
	return params
}

func (p *parser) parseTypeExpr() ast.TypeExpr {
	p.enter(p.tok.Pos)
	defer p.leave()
	switch p.tok.Kind {
	case token.Ident:
		t := &ast.NamedType{NamePos: p.tok.Pos, Name: p.tok.Lit}
		p.advance()
		return t
	case token.Array:
		pos := p.tok.Pos
		p.advance()
		p.expect(token.LBracket)
		lo := p.parseExpr()
		p.expect(token.DotDot)
		hi := p.parseExpr()
		p.expect(token.RBracket)
		p.expect(token.Of)
		elem := p.parseTypeExpr()
		return &ast.ArrayType{ArrayPos: pos, Lo: lo, Hi: hi, Elem: elem}
	case token.Record:
		pos := p.tok.Pos
		p.advance()
		t := &ast.RecordType{RecordPos: pos}
		for p.tok.Kind == token.Ident {
			fpos := p.tok.Pos
			names := p.parseIdentList()
			p.expect(token.Colon)
			fte := p.parseTypeExpr()
			t.Fields = append(t.Fields, &ast.RecordField{FieldPos: fpos, Names: names, Type: fte})
			if !p.accept(token.Semi) {
				break
			}
		}
		p.expect(token.End)
		return t
	}
	p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
	t := &ast.NamedType{NamePos: p.tok.Pos, Name: "integer"}
	p.advance()
	return t
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseCompound() *ast.CompoundStmt {
	pos := p.tok.Pos
	p.expect(token.Begin)
	cs := &ast.CompoundStmt{BeginPos: pos, Stmts: p.parseStmtList(token.End)}
	p.expect(token.End)
	return cs
}

// parseStmtList parses semicolon-separated statements until the
// terminator. Empty statements between semicolons are dropped unless a
// label is attached to them.
func (p *parser) parseStmtList(term token.Kind) []ast.Stmt {
	var stmts []ast.Stmt
	for {
		if p.tok.Kind == term || p.tok.Kind == token.EOF {
			return stmts
		}
		s := p.parseStmt()
		if _, isEmpty := s.(*ast.EmptyStmt); !isEmpty {
			stmts = append(stmts, s)
		}
		if !p.accept(token.Semi) {
			if p.tok.Kind != term && p.tok.Kind != token.EOF && p.tok.Kind != token.Until && p.tok.Kind != token.Else {
				p.errorf(p.tok.Pos, "expected ';' or %q, found %s", term.String(), p.tok)
				p.advance()
				continue
			}
			return stmts
		}
	}
}

func (p *parser) parseStmt() ast.Stmt {
	p.enter(p.tok.Pos)
	defer p.leave()
	// Optional numeric label prefix: `9: stmt`.
	if p.tok.Kind == token.IntLit && p.next.Kind == token.Colon {
		pos := p.tok.Pos
		label := p.tok.Lit
		p.advance()
		p.advance()
		return &ast.LabeledStmt{LabelPos: pos, Label: label, Stmt: p.parseStmt()}
	}
	switch p.tok.Kind {
	case token.Begin:
		return p.parseCompound()
	case token.If:
		return p.parseIf()
	case token.While:
		return p.parseWhile()
	case token.Repeat:
		return p.parseRepeat()
	case token.For:
		return p.parseFor()
	case token.Case:
		return p.parseCase()
	case token.Goto:
		pos := p.tok.Pos
		p.advance()
		if p.tok.Kind != token.IntLit && p.tok.Kind != token.Ident {
			p.errorf(p.tok.Pos, "expected label after goto, found %s", p.tok)
			return &ast.EmptyStmt{SemiPos: pos}
		}
		label := p.tok.Lit
		p.advance()
		return &ast.GotoStmt{GotoPos: pos, Label: label}
	case token.Ident:
		return p.parseSimpleStmt()
	case token.Semi, token.End, token.Until, token.Else:
		return &ast.EmptyStmt{SemiPos: p.tok.Pos}
	}
	p.errorf(p.tok.Pos, "expected statement, found %s", p.tok)
	pos := p.tok.Pos
	p.advance()
	return &ast.EmptyStmt{SemiPos: pos}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.If)
	cond := p.parseExpr()
	p.expect(token.Then)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.Else) {
		els = p.parseStmt()
	}
	return &ast.IfStmt{IfPos: pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseWhile() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.While)
	cond := p.parseExpr()
	p.expect(token.Do)
	body := p.parseStmt()
	return &ast.WhileStmt{WhilePos: pos, Cond: cond, Body: body}
}

func (p *parser) parseRepeat() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.Repeat)
	stmts := p.parseStmtList(token.Until)
	p.expect(token.Until)
	cond := p.parseExpr()
	return &ast.RepeatStmt{RepeatPos: pos, Stmts: stmts, Cond: cond}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.For)
	v := &ast.Ident{NamePos: p.tok.Pos, Name: p.expectIdent()}
	p.expect(token.Assign)
	from := p.parseExpr()
	down := false
	switch p.tok.Kind {
	case token.To:
		p.advance()
	case token.Downto:
		down = true
		p.advance()
	default:
		p.errorf(p.tok.Pos, "expected 'to' or 'downto', found %s", p.tok)
	}
	limit := p.parseExpr()
	p.expect(token.Do)
	body := p.parseStmt()
	return &ast.ForStmt{ForPos: pos, Var: v, From: from, Limit: limit, Down: down, Body: body}
}

func (p *parser) parseCase() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.Case)
	expr := p.parseExpr()
	p.expect(token.Of)
	cs := &ast.CaseStmt{CasePos: pos, Expr: expr}
	for {
		if p.tok.Kind == token.End || p.tok.Kind == token.Else || p.tok.Kind == token.EOF {
			break
		}
		armPos := p.tok.Pos
		var consts []ast.Expr
		consts = append(consts, p.parseExpr())
		for p.accept(token.Comma) {
			consts = append(consts, p.parseExpr())
		}
		p.expect(token.Colon)
		body := p.parseStmt()
		cs.Arms = append(cs.Arms, &ast.CaseArm{ArmPos: armPos, Consts: consts, Body: body})
		if !p.accept(token.Semi) {
			break
		}
	}
	if p.accept(token.Else) {
		cs.Else = p.parseStmt()
		p.accept(token.Semi)
	}
	p.expect(token.End)
	return cs
}

// parseSimpleStmt parses an assignment or a procedure call.
func (p *parser) parseSimpleStmt() ast.Stmt {
	pos := p.tok.Pos
	name := p.expectIdent()
	// Procedure call with arguments.
	if p.tok.Kind == token.LParen {
		args := p.parseArgs()
		return &ast.CallStmt{CallPos: pos, Name: name, Args: args}
	}
	// Designator for assignment target.
	var lhs ast.Expr = &ast.Ident{NamePos: pos, Name: name}
	lhs = p.parseDesignatorSuffix(lhs)
	if p.accept(token.Assign) {
		rhs := p.parseExpr()
		return &ast.AssignStmt{Lhs: lhs, Rhs: rhs}
	}
	// Bare identifier: parameterless procedure call.
	if _, ok := lhs.(*ast.Ident); ok {
		return &ast.CallStmt{CallPos: pos, Name: name}
	}
	p.errorf(p.tok.Pos, "expected ':=' in assignment, found %s", p.tok)
	return &ast.EmptyStmt{SemiPos: pos}
}

func (p *parser) parseArgs() []ast.Expr {
	p.expect(token.LParen)
	var args []ast.Expr
	if p.tok.Kind != token.RParen {
		args = append(args, p.parseExpr())
		for p.accept(token.Comma) {
			args = append(args, p.parseExpr())
		}
	}
	p.expect(token.RParen)
	return args
}

func (p *parser) parseDesignatorSuffix(x ast.Expr) ast.Expr {
	for {
		switch p.tok.Kind {
		case token.LBracket:
			p.advance()
			var idx []ast.Expr
			idx = append(idx, p.parseExpr())
			for p.accept(token.Comma) {
				idx = append(idx, p.parseExpr())
			}
			p.expect(token.RBracket)
			x = &ast.IndexExpr{X: x, Indices: idx}
		case token.Period:
			p.advance()
			x = &ast.FieldExpr{X: x, Field: p.expectIdent()}
		default:
			return x
		}
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() ast.Expr {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		p.advance()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	p.enter(p.tok.Pos)
	defer p.leave()
	switch p.tok.Kind {
	case token.Plus, token.Minus:
		pos := p.tok.Pos
		op := p.tok.Kind
		p.advance()
		return &ast.UnaryExpr{OpPos: pos, Op: op, X: p.parseUnary()}
	case token.Not:
		pos := p.tok.Pos
		p.advance()
		return &ast.UnaryExpr{OpPos: pos, Op: token.Not, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.tok.Kind {
	case token.IntLit:
		v, err := strconv.ParseInt(p.tok.Lit, 10, 64)
		if err != nil {
			p.errorf(p.tok.Pos, "bad integer literal %q", p.tok.Lit)
		}
		e := &ast.IntLit{LitPos: p.tok.Pos, Value: v}
		p.advance()
		return e
	case token.RealLit:
		v, err := strconv.ParseFloat(p.tok.Lit, 64)
		if err != nil {
			p.errorf(p.tok.Pos, "bad real literal %q", p.tok.Lit)
		}
		e := &ast.RealLit{LitPos: p.tok.Pos, Value: v, Text: p.tok.Lit}
		p.advance()
		return e
	case token.StringLit:
		e := &ast.StringLit{LitPos: p.tok.Pos, Value: p.tok.Lit}
		p.advance()
		return e
	case token.LParen:
		p.advance()
		e := p.parseExpr()
		p.expect(token.RParen)
		return e
	case token.LBracket:
		pos := p.tok.Pos
		p.advance()
		lit := &ast.SetLit{LitPos: pos}
		if p.tok.Kind != token.RBracket {
			lit.Elems = append(lit.Elems, p.parseExpr())
			for p.accept(token.Comma) {
				lit.Elems = append(lit.Elems, p.parseExpr())
			}
		}
		p.expect(token.RBracket)
		return lit
	case token.Ident:
		pos := p.tok.Pos
		name := p.tok.Lit
		p.advance()
		if p.tok.Kind == token.LParen {
			args := p.parseArgs()
			return &ast.CallExpr{CallPos: pos, Name: name, Args: args}
		}
		return p.parseDesignatorSuffix(&ast.Ident{NamePos: pos, Name: name})
	}
	p.errorf(p.tok.Pos, "expected expression, found %s", p.tok)
	e := &ast.IntLit{LitPos: p.tok.Pos, Value: 0}
	if p.tok.Kind != token.EOF {
		p.advance()
	}
	return e
}

// MustParse parses src and panics on error; intended for tests and
// embedded example programs that are known to be valid.
func MustParse(file, src string) *ast.Program {
	prog, err := ParseProgram(file, src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse(%s): %v", file, err))
	}
	return prog
}

// ErrEmpty is returned by ParseProgram for blank inputs.
var ErrEmpty = errors.New("parser: empty input")

// CheckNonEmpty reports ErrEmpty when src has no tokens. Exposed so
// callers can give a friendlier diagnostic than "expected program".
func CheckNonEmpty(src string) error {
	if strings.TrimSpace(src) == "" {
		return ErrEmpty
	}
	return nil
}
