package parser_test

import (
	"strings"
	"testing"

	"gadt/internal/pascal/parser"
)

// Regression tests for crashers found by fuzzing. The recursive-descent
// parser used to recurse once per nesting level with no bound, so a few
// megabytes of "((((..." (or any other self-nesting construct) blew the
// goroutine stack — a fatal runtime error that recover() cannot catch.
// Each case must now come back as an ordinary parse error. The checked-in
// corpus entry under testdata/fuzz/FuzzParser pins the same class and is
// replayed by every plain `go test` run, so `make check` fails if the
// crash ever reproduces.
func TestDeepNestingRejected(t *testing.T) {
	const depth = 2_000_000
	cases := map[string]string{
		"parens":  "program p; var x: integer; begin x := " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + " end.",
		"not":     "program p; var x: boolean; begin if " + strings.Repeat("not ", depth) + "true then x := true end.",
		"neg":     "program p; var x: integer; begin x := " + strings.Repeat("-", depth) + "1 end.",
		"begin":   "program p; begin " + strings.Repeat("begin ", depth) + strings.Repeat("end; ", depth) + "end.",
		"routine": "program p; " + strings.Repeat("procedure q; ", depth) + "begin end.",
		"array":   "program p; var a: " + strings.Repeat("array [0 .. 1] of ", depth) + "integer; begin end.",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := parser.ParseProgram("deep.pas", src)
			if err == nil {
				t.Fatal("deeply nested input parsed without error")
			}
			if !strings.Contains(err.Error(), "nesting too deep") {
				t.Fatalf("wrong error: %v", err)
			}
		})
	}
}

// TestReasonableNestingAccepted guards the other side of the limit:
// nesting that real (even machine-generated) programs use must keep
// parsing.
func TestReasonableNestingAccepted(t *testing.T) {
	const depth = 500
	src := "program p; var x: integer; begin x := " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + " end."
	if _, err := parser.ParseProgram("ok.pas", src); err != nil {
		t.Fatalf("depth-%d parens rejected: %v", depth, err)
	}
}
