package parser_test

import (
	"strings"
	"testing"

	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/token"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.ParseProgram("t.pas", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestParsePaperPrograms(t *testing.T) {
	for name, src := range map[string]string{
		"sqrtest": paper.Sqrtest, "slice": paper.SliceExample, "pqr": paper.PQR,
		"globals": paper.GlobalSideEffects, "goto": paper.GlobalGoto,
		"loopGoto": paper.LoopGoto, "arrsum": paper.ArrsumProgram,
	} {
		t.Run(name, func(t *testing.T) { parse(t, src) })
	}
}

func TestProgramStructure(t *testing.T) {
	prog := parse(t, paper.Sqrtest)
	if prog.Name != "main" {
		t.Errorf("name = %q, want main", prog.Name)
	}
	if len(prog.Block.Routines) != 13 {
		t.Errorf("routines = %d, want 13", len(prog.Block.Routines))
	}
	if len(prog.Block.Types) != 1 || prog.Block.Types[0].Name != "intarray" {
		t.Errorf("types = %v", prog.Block.Types)
	}
	if len(prog.Block.Body.Stmts) != 2 {
		t.Errorf("main body stmts = %d, want 2", len(prog.Block.Body.Stmts))
	}
	call, ok := prog.Block.Body.Stmts[0].(*ast.CallStmt)
	if !ok || call.Name != "sqrtest" {
		t.Fatalf("first stmt = %#v, want call to sqrtest", prog.Block.Body.Stmts[0])
	}
	if _, ok := call.Args[0].(*ast.SetLit); !ok {
		t.Errorf("first arg = %#v, want array display", call.Args[0])
	}
}

func TestOperatorPrecedence(t *testing.T) {
	e, err := parser.ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.Plus {
		t.Fatalf("root = %#v, want +", e)
	}
	if inner, ok := b.Y.(*ast.BinaryExpr); !ok || inner.Op != token.Star {
		t.Fatalf("rhs = %#v, want *", b.Y)
	}
}

func TestPascalBooleanPrecedence(t *testing.T) {
	// Pascal: `and` binds like `*`, so a and b or c == (a and b) or c.
	e, err := parser.ParseExpr("a and b or c")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*ast.BinaryExpr)
	if b.Op != token.Or {
		t.Fatalf("root op = %v, want or", b.Op)
	}
	if x, ok := b.X.(*ast.BinaryExpr); !ok || x.Op != token.And {
		t.Fatalf("lhs = %#v, want and", b.X)
	}
}

func TestRelationalNonAssociative(t *testing.T) {
	// (x <= 1) = b parses; relational operators are level 1 so the
	// parenthesized form is required, as in real Pascal.
	if _, err := parser.ParseExpr("(x <= 1) = b"); err != nil {
		t.Fatal(err)
	}
}

func TestUnaryMinus(t *testing.T) {
	e, err := parser.ParseExpr("-x * y")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*ast.BinaryExpr)
	if b.Op != token.Star {
		t.Fatalf("root = %v, want *", b.Op)
	}
	if _, ok := b.X.(*ast.UnaryExpr); !ok {
		t.Fatalf("lhs = %#v, want unary", b.X)
	}
}

func TestDanglingElse(t *testing.T) {
	prog := parse(t, `
program t;
var a, b, x: integer;
begin
  if a = 1 then
    if b = 2 then x := 1
    else x := 2;
end.`)
	outer := prog.Block.Body.Stmts[0].(*ast.IfStmt)
	if outer.Else != nil {
		t.Fatal("else bound to outer if; must bind to inner")
	}
	inner := outer.Then.(*ast.IfStmt)
	if inner.Else == nil {
		t.Fatal("inner if lost its else")
	}
}

func TestLabeledAndGoto(t *testing.T) {
	prog := parse(t, `
program t;
label 9;
var x: integer;
begin
  goto 9;
  x := 1;
  9: x := 2;
end.`)
	if len(prog.Block.Labels) != 1 || prog.Block.Labels[0].Name != "9" {
		t.Fatalf("labels = %v", prog.Block.Labels)
	}
	g, ok := prog.Block.Body.Stmts[0].(*ast.GotoStmt)
	if !ok || g.Label != "9" {
		t.Fatalf("stmt 0 = %#v", prog.Block.Body.Stmts[0])
	}
	l, ok := prog.Block.Body.Stmts[2].(*ast.LabeledStmt)
	if !ok || l.Label != "9" {
		t.Fatalf("stmt 2 = %#v", prog.Block.Body.Stmts[2])
	}
}

func TestParamModes(t *testing.T) {
	prog := parse(t, `
program t;
procedure p(a: integer; var b: integer; out c: integer; in d: integer);
begin
  b := a; c := d;
end;
begin
  p(1, a, a, 2);
end.`)
	params := prog.Block.Routines[0].Params
	want := []ast.ParamMode{ast.Value, ast.VarMode, ast.Out, ast.Value}
	if len(params) != 4 {
		t.Fatalf("param groups = %d, want 4", len(params))
	}
	for i, m := range want {
		if params[i].Mode != m {
			t.Errorf("param %d mode = %v, want %v", i, params[i].Mode, m)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missingSemi", "program t begin end."},
		{"missingDot", "program t; begin end"},
		{"badExpr", "program t; var x: integer; begin x := ; end."},
		{"missingThen", "program t; var x: integer; begin if x = 1 x := 2; end."},
		{"strayToken", "program t; begin end. extra"},
		{"badFor", "program t; var i: integer; begin for i := 1 do i := 2; end."},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parser.ParseProgram("t.pas", tc.src); err == nil {
				t.Errorf("expected syntax error for %q", tc.src)
			}
		})
	}
}

func TestErrorRecoveryCollectsMultiple(t *testing.T) {
	_, err := parser.ParseProgram("t.pas", `
program t;
var x: integer;
begin
  x := ;
  x := ;
end.`)
	if err == nil {
		t.Fatal("expected errors")
	}
	el, ok := err.(parser.ErrorList)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(el) < 2 {
		t.Errorf("collected %d errors, want >= 2", len(el))
	}
}

// TestRoundTrip checks print ∘ parse ∘ print = print: the printer output
// reparses to a tree that prints identically (a printer/parser fixpoint).
func TestRoundTrip(t *testing.T) {
	for name, src := range map[string]string{
		"sqrtest": paper.Sqrtest, "slice": paper.SliceExample, "pqr": paper.PQR,
		"globals": paper.GlobalSideEffects, "goto": paper.GlobalGoto,
		"loopGoto": paper.LoopGoto, "arrsum": paper.ArrsumProgram,
	} {
		t.Run(name, func(t *testing.T) {
			p1 := parse(t, src)
			out1 := printer.Print(p1)
			p2, err := parser.ParseProgram("printed.pas", out1)
			if err != nil {
				t.Fatalf("reparse failed: %v\n--- printed ---\n%s", err, out1)
			}
			out2 := printer.Print(p2)
			if out1 != out2 {
				t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
			}
		})
	}
}

func TestPrinterParenthesization(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"-(1 + 2)", "-(1 + 2)"},
		{"not (a and b)", "not (a and b)"},
		{"(a + b) - c", "a + b - c"}, // left assoc: parens redundant
		{"a - (b - c)", "a - (b - c)"},
	}
	for _, tc := range cases {
		e, err := parser.ParseExpr(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if got := printer.PrintExpr(e); got != tc.want {
			t.Errorf("print(%q) = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{"", "1 +", "x y", "(1", "f(1,"} {
		if _, err := parser.ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	prog := parse(t, `
program t; (* header comment *)
var x: integer; { var comment }
begin
  x := 1; (* trailing *)
end.`)
	if len(prog.Block.Body.Stmts) != 1 {
		t.Errorf("stmts = %d, want 1", len(prog.Block.Body.Stmts))
	}
}

func TestNestedRoutineParsing(t *testing.T) {
	prog := parse(t, paper.GlobalGoto)
	p := prog.Block.Routines[0]
	if p.Name != "p" || len(p.Block.Routines) != 1 || p.Block.Routines[0].Name != "q" {
		t.Fatalf("nesting wrong: %v", p)
	}
}

func TestRepeatUntil(t *testing.T) {
	prog := parse(t, `
program t;
var i: integer;
begin
  repeat
    i := i + 1;
    i := i + 2;
  until i > 10;
end.`)
	r, ok := prog.Block.Body.Stmts[0].(*ast.RepeatStmt)
	if !ok {
		t.Fatalf("stmt = %#v", prog.Block.Body.Stmts[0])
	}
	if len(r.Stmts) != 2 {
		t.Errorf("repeat body = %d stmts, want 2", len(r.Stmts))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	parser.MustParse("bad.pas", "not pascal")
}

func TestPrintedOutModeReparses(t *testing.T) {
	src := `
program t;
procedure p(out z: integer);
begin
  z := 1;
end;
var w: integer;
begin
  p(w);
end.`
	prog := parse(t, src)
	out := printer.Print(prog)
	if !strings.Contains(out, "out z: integer") {
		t.Errorf("printed form lost out mode:\n%s", out)
	}
	if _, err := parser.ParseProgram("t.pas", out); err != nil {
		t.Errorf("reparse of out-mode print failed: %v", err)
	}
}
