package backend_test

import (
	"strings"
	"testing"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/backend"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

// countSink counts statement events to prove tracing still flows when
// the vm backend falls back to the interpreter for traced runs.
type countSink struct {
	interp.NopSink
	stmts int
}

func (c *countSink) Stmt(ast.Stmt, *sem.Routine) { c.stmts++ }

const loopSrc = `
program p;
var i, s: integer;
begin
  s := 0;
  for i := 1 to 100 do s := s + i;
  writeln(s)
end.
`

// nonLocalGoto is rejected by the bytecode compiler and must fall back
// to the interpreter under the vm backend.
const nonLocalGoto = `
program p;
label 9;
procedure esc;
begin
  goto 9
end;
begin
  esc;
  writeln('skipped');
9:
  writeln('landed')
end.
`

func analyze(t *testing.T, src string) *sem.Info {
	t.Helper()
	prog, err := parser.ParseProgram("t.pas", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func runOn(t *testing.T, name, src string, cfg interp.Config) string {
	t.Helper()
	b, err := backend.Select(name)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	cfg.Input = strings.NewReader("")
	cfg.Output = &out
	r := b.NewRunner("", analyze(t, src), cfg)
	if err := r.Run(); err != nil {
		t.Fatalf("%s run: %v", name, err)
	}
	return out.String()
}

func TestSelect(t *testing.T) {
	for _, name := range backend.Names() {
		b, err := backend.Select(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != name {
			t.Errorf("Select(%q).Name() = %q", name, b.Name())
		}
	}
	if b, err := backend.Select(""); err != nil || b.Name() != backend.Default {
		t.Errorf("Select(\"\") = %v, %v; want default backend", b, err)
	}
	if _, err := backend.Select("jit"); err == nil {
		t.Error("Select(\"jit\") should fail")
	}
}

func TestBackendsAgree(t *testing.T) {
	for _, src := range []string{loopSrc, nonLocalGoto} {
		want := runOn(t, "interp", src, interp.Config{})
		got := runOn(t, "vm", src, interp.Config{})
		if got != want {
			t.Errorf("backend disagreement:\n  interp: %q\n  vm:     %q", want, got)
		}
	}
}

// TestVMBackendTracedFallback: a non-nil Sink must route through the
// interpreter so trace events still flow.
func TestVMBackendTracedFallback(t *testing.T) {
	b, err := backend.Select("vm")
	if err != nil {
		t.Fatal(err)
	}
	info := analyze(t, loopSrc)
	sink := &countSink{}
	var out strings.Builder
	r := b.NewRunner("", info, interp.Config{Output: &out, Sink: sink})
	if _, ok := r.(*interp.Interp); !ok {
		t.Fatalf("traced vm runner is %T, want *interp.Interp", r)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.stmts == 0 {
		t.Error("traced run produced no statement events")
	}
}
