// Package backend selects between the tree-walking interpreter and the
// bytecode VM as execution engines for analyzed Pascal programs.
//
// Both engines satisfy Runner; callers that only need untraced
// execution (campaign mutant runs, diff-harness subjects, pdiff shrink
// re-tests) pick an engine by name and stay agnostic to which one runs.
// The VM backend is transparently conservative: traced runs (a non-nil
// Config.Sink) and programs the bytecode compiler rejects
// (vm.ErrUnsupported — e.g. non-local gotos) fall back to the
// interpreter, so selecting "vm" never changes observable behavior,
// only speed.
package backend

import (
	"fmt"
	"sort"

	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/vm"
)

// Runner is the common surface of interp.Interp and vm.VM that the
// harnesses consume: run to completion, then inspect statement count
// and final global bindings.
type Runner interface {
	Run() error
	Steps() int
	Globals() []interp.Binding
}

// Backend constructs Runners for analyzed programs.
type Backend interface {
	// Name is the flag-facing identifier ("interp" or "vm").
	Name() string
	// NewRunner prepares a runner for one execution. key is a
	// content-addressed identity for the program source (see
	// vm.SourceKey); the VM backend uses it to reuse compiled
	// bytecode across runs, and "" disables that reuse. The
	// interpreter ignores it.
	NewRunner(key string, info *sem.Info, cfg interp.Config) Runner
}

type interpBackend struct{}

func (interpBackend) Name() string { return "interp" }

func (interpBackend) NewRunner(_ string, info *sem.Info, cfg interp.Config) Runner {
	return interp.New(info, cfg)
}

type vmBackend struct{}

func (vmBackend) Name() string { return "vm" }

func (vmBackend) NewRunner(key string, info *sem.Info, cfg interp.Config) Runner {
	if cfg.Sink != nil {
		// The VM is untraced by design; event-sink runs need the
		// interpreter's per-node dispatch.
		return interp.New(info, cfg)
	}
	prog, err := vm.CompileKeyed(key, info)
	if err != nil {
		return interp.New(info, cfg)
	}
	return vm.New(prog, cfg)
}

var backends = map[string]Backend{
	"interp": interpBackend{},
	"vm":     vmBackend{},
}

// Default is the backend used when no flag is given.
const Default = "interp"

// Select resolves a backend by name.
func Select(name string) (Backend, error) {
	if name == "" {
		name = Default
	}
	b, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("unknown backend %q (have %s)", name, namesString())
	}
	return b, nil
}

// Names lists the available backend names, sorted.
func Names() []string {
	ns := make([]string, 0, len(backends))
	for n := range backends {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

func namesString() string {
	ns := Names()
	s := ""
	for i, n := range ns {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
