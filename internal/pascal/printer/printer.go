// Package printer renders GADT Pascal ASTs back to source text.
//
// The output is re-parsable by the parser, including the transformed
// internal form: Out-mode parameters print with the contextual `out`
// keyword and array displays print as `[e1, e2]`. The printer is used for
// golden tests, for presenting original constructs to the user, and for
// the transformation-growth experiment (Section 9 of the paper compares
// source sizes before and after transformation).
package printer

import (
	"fmt"
	"strings"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/token"
)

// Fprint renders a whole program.
func Print(p *ast.Program) string {
	var pr printer
	pr.program(p)
	return pr.b.String()
}

// PrintRoutine renders a single routine declaration.
func PrintRoutine(r *ast.Routine) string {
	var pr printer
	pr.routine(r)
	return pr.b.String()
}

// PrintStmt renders a single statement at the given indent level.
func PrintStmt(s ast.Stmt) string {
	var pr printer
	pr.stmt(s)
	pr.newlineIfNeeded()
	return pr.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e ast.Expr) string {
	var pr printer
	pr.expr(e, 0)
	return pr.b.String()
}

// PrintTypeExpr renders a type denotation.
func PrintTypeExpr(t ast.TypeExpr) string {
	var pr printer
	pr.typeExpr(t)
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
	atBOL  bool // whether the writer is at the beginning of a line
}

func (p *printer) write(s string) {
	if p.atBOL && s != "" {
		p.b.WriteString(strings.Repeat("  ", p.indent))
		p.atBOL = false
	}
	p.b.WriteString(s)
}

func (p *printer) writef(format string, args ...any) {
	p.write(fmt.Sprintf(format, args...))
}

func (p *printer) newline() {
	p.b.WriteByte('\n')
	p.atBOL = true
}

func (p *printer) newlineIfNeeded() {
	if !p.atBOL {
		p.newline()
	}
}

// ---------------------------------------------------------------------------

func (p *printer) program(prog *ast.Program) {
	p.writef("program %s;", prog.Name)
	p.newline()
	p.block(prog.Block)
	p.write("end.")
	p.newline()
}

// block prints declarations and the body's statements; the caller is
// responsible for printing the trailing "end." or "end;".
func (p *printer) block(b *ast.Block) {
	if len(b.Labels) > 0 {
		names := make([]string, len(b.Labels))
		for i, l := range b.Labels {
			names[i] = l.Name
		}
		p.writef("label %s;", strings.Join(names, ", "))
		p.newline()
	}
	if len(b.Consts) > 0 {
		p.write("const")
		p.newline()
		p.indent++
		for _, d := range b.Consts {
			p.writef("%s = ", d.Name)
			p.expr(d.Value, 0)
			p.write(";")
			p.newline()
		}
		p.indent--
	}
	if len(b.Types) > 0 {
		p.write("type")
		p.newline()
		p.indent++
		for _, d := range b.Types {
			p.writef("%s = ", d.Name)
			p.typeExpr(d.Type)
			p.write(";")
			p.newline()
		}
		p.indent--
	}
	if len(b.Vars) > 0 {
		p.write("var")
		p.newline()
		p.indent++
		for _, d := range b.Vars {
			p.writef("%s: ", strings.Join(d.Names, ", "))
			p.typeExpr(d.Type)
			p.write(";")
			p.newline()
		}
		p.indent--
	}
	for _, r := range b.Routines {
		p.routine(r)
	}
	p.write("begin")
	p.newline()
	p.indent++
	for _, s := range b.Body.Stmts {
		p.stmt(s)
		p.write(";")
		p.newline()
	}
	p.indent--
}

func (p *printer) routine(r *ast.Routine) {
	p.writef("%s %s", r.Kind, r.Name)
	if len(r.Params) > 0 {
		p.write("(")
		for i, par := range r.Params {
			if i > 0 {
				p.write("; ")
			}
			switch par.Mode {
			case ast.VarMode:
				p.write("var ")
			case ast.Out:
				p.write("out ")
			}
			p.writef("%s: ", strings.Join(par.Names, ", "))
			p.typeExpr(par.Type)
		}
		p.write(")")
	}
	if r.Kind == ast.FuncKind {
		p.write(": ")
		p.typeExpr(r.Result)
	}
	p.write(";")
	p.newline()
	p.indent++
	p.block(r.Block)
	p.write("end;")
	p.newline()
	p.indent--
}

func (p *printer) typeExpr(t ast.TypeExpr) {
	switch t := t.(type) {
	case *ast.NamedType:
		p.write(t.Name)
	case *ast.ArrayType:
		p.write("array [")
		p.expr(t.Lo, 0)
		p.write(" .. ")
		p.expr(t.Hi, 0)
		p.write("] of ")
		p.typeExpr(t.Elem)
	case *ast.RecordType:
		p.write("record ")
		for i, f := range t.Fields {
			if i > 0 {
				p.write("; ")
			}
			p.writef("%s: ", strings.Join(f.Names, ", "))
			p.typeExpr(f.Type)
		}
		p.write(" end")
	default:
		p.writef("<?type %T>", t)
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *printer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.CompoundStmt:
		p.write("begin")
		p.newline()
		p.indent++
		for _, c := range s.Stmts {
			p.stmt(c)
			p.write(";")
			p.newline()
		}
		p.indent--
		p.write("end")
	case *ast.AssignStmt:
		p.expr(s.Lhs, 0)
		p.write(" := ")
		p.expr(s.Rhs, 0)
	case *ast.CallStmt:
		p.write(s.Name)
		if len(s.Args) > 0 {
			p.write("(")
			p.exprList(s.Args)
			p.write(")")
		}
	case *ast.IfStmt:
		p.write("if ")
		p.expr(s.Cond, 0)
		p.write(" then")
		p.nested(s.Then)
		if s.Else != nil {
			p.newlineIfNeeded()
			p.write("else")
			p.nested(s.Else)
		}
	case *ast.WhileStmt:
		p.write("while ")
		p.expr(s.Cond, 0)
		p.write(" do")
		p.nested(s.Body)
	case *ast.RepeatStmt:
		p.write("repeat")
		p.newline()
		p.indent++
		for _, c := range s.Stmts {
			p.stmt(c)
			p.write(";")
			p.newline()
		}
		p.indent--
		p.write("until ")
		p.expr(s.Cond, 0)
	case *ast.ForStmt:
		p.writef("for %s := ", s.Var.Name)
		p.expr(s.From, 0)
		if s.Down {
			p.write(" downto ")
		} else {
			p.write(" to ")
		}
		p.expr(s.Limit, 0)
		p.write(" do")
		p.nested(s.Body)
	case *ast.CaseStmt:
		p.write("case ")
		p.expr(s.Expr, 0)
		p.write(" of")
		p.newline()
		p.indent++
		for _, arm := range s.Arms {
			p.exprList(arm.Consts)
			p.write(": ")
			p.stmt(arm.Body)
			p.write(";")
			p.newline()
		}
		if s.Else != nil {
			p.write("else ")
			p.stmt(s.Else)
			p.write(";")
			p.newline()
		}
		p.indent--
		p.write("end")
	case *ast.GotoStmt:
		p.writef("goto %s", s.Label)
	case *ast.LabeledStmt:
		p.writef("%s: ", s.Label)
		p.stmt(s.Stmt)
	case *ast.EmptyStmt:
		// nothing
	default:
		p.writef("<?stmt %T>", s)
	}
}

// nested prints a statement that syntactically hangs off a control
// header (then/else/do branches).
func (p *printer) nested(s ast.Stmt) {
	if cs, ok := s.(*ast.CompoundStmt); ok {
		p.write(" ")
		p.stmt(cs)
		return
	}
	p.newline()
	p.indent++
	p.stmt(s)
	p.indent--
}

// ---------------------------------------------------------------------------
// Expressions

func (p *printer) exprList(es []ast.Expr) {
	for i, e := range es {
		if i > 0 {
			p.write(", ")
		}
		p.expr(e, 0)
	}
}

// expr prints e, parenthesizing when its precedence is below the
// context's minimum precedence.
func (p *printer) expr(e ast.Expr, minPrec int) {
	switch e := e.(type) {
	case *ast.Ident:
		p.write(e.Name)
	case *ast.IntLit:
		p.writef("%d", e.Value)
	case *ast.RealLit:
		if e.Text != "" {
			p.write(e.Text)
		} else {
			p.writef("%g", e.Value)
		}
	case *ast.StringLit:
		p.writef("'%s'", strings.ReplaceAll(e.Value, "'", "''"))
	case *ast.BinaryExpr:
		prec := e.Op.Precedence()
		if prec < minPrec {
			p.write("(")
		}
		p.expr(e.X, prec)
		p.writef(" %s ", e.Op)
		p.expr(e.Y, prec+1)
		if prec < minPrec {
			p.write(")")
		}
	case *ast.UnaryExpr:
		if e.Op == token.Not {
			p.write("not ")
		} else {
			p.write(e.Op.String())
		}
		// Unary operators bind tighter than all binary operators.
		p.expr(e.X, 4)
	case *ast.IndexExpr:
		p.expr(e.X, 4)
		p.write("[")
		p.exprList(e.Indices)
		p.write("]")
	case *ast.FieldExpr:
		p.expr(e.X, 4)
		p.writef(".%s", e.Field)
	case *ast.CallExpr:
		p.write(e.Name)
		p.write("(")
		p.exprList(e.Args)
		p.write(")")
	case *ast.SetLit:
		p.write("[")
		p.exprList(e.Elems)
		p.write("]")
	default:
		p.writef("<?expr %T>", e)
	}
}
