package printer_test

import (
	"strings"
	"testing"

	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
)

func TestPrintSqrtestGolden(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	out := printer.Print(prog)
	for _, want := range []string{
		"program main;",
		"intarray = array [1 .. 10] of integer;",
		"procedure arrsum(a: intarray; n: integer; var b: integer);",
		"function decrement(y: integer): integer;",
		"for i := 1 to n do",
		"decrement := y + 1;",
		"sqrtest([1, 2], 2, isok);",
		"end.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed program missing %q:\n%s", want, out)
		}
	}
}

func TestPrintStmtForms(t *testing.T) {
	src := `
program t;
label 9;
var i, x: integer;
begin
  repeat
    i := i + 1;
  until i > 3;
  case x of
    1: x := 10;
    2, 3: x := 20;
  else x := 0;
  end;
  while x > 0 do
    x := x - 1;
  goto 9;
  9: x := 0;
end.`
	prog := parser.MustParse("t.pas", src)
	out := printer.Print(prog)
	for _, want := range []string{
		"label 9;",
		"repeat",
		"until i > 3",
		"case x of",
		"2, 3: x := 20;",
		"else x := 0;",
		"while x > 0 do",
		"goto 9",
		"9: x := 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintRecordAndConst(t *testing.T) {
	src := `
program t;
const
  limit = 10;
type
  point = record x, y: integer end;
var
  p: point;
begin
  p.x := limit;
end.`
	prog := parser.MustParse("t.pas", src)
	out := printer.Print(prog)
	for _, want := range []string{"limit = 10;", "point = record x, y: integer end;", "p.x := limit"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintExprStringEscapes(t *testing.T) {
	e, err := parser.ParseExpr("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if got := printer.PrintExpr(e); got != "'it''s'" {
		t.Errorf("string literal printed as %q", got)
	}
}

func TestPrintRealPreservesSpelling(t *testing.T) {
	e, err := parser.ParseExpr("2.50")
	if err != nil {
		t.Fatal(err)
	}
	if got := printer.PrintExpr(e); got != "2.50" {
		t.Errorf("real printed as %q, want source spelling", got)
	}
}

func TestPrintRoutineStandalone(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.PQR)
	r := prog.Block.Routines[0]
	out := printer.PrintRoutine(r)
	if !strings.HasPrefix(out, "procedure q(a: integer; var b: integer);") {
		t.Errorf("routine print:\n%s", out)
	}
}

func TestPrintTypeExpr(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	te := prog.Block.Types[0].Type
	if got := printer.PrintTypeExpr(te); got != "array [1 .. 10] of integer" {
		t.Errorf("type printed as %q", got)
	}
}

func TestPrintStmtSingle(t *testing.T) {
	prog := parser.MustParse("t.pas", `program t; var x: integer; begin if x > 0 then x := 1 else x := 2; end.`)
	s := prog.Block.Body.Stmts[0]
	out := printer.PrintStmt(s)
	if !strings.Contains(out, "if x > 0 then") || !strings.Contains(out, "else") {
		t.Errorf("stmt print:\n%s", out)
	}
}

func TestNestedCompoundIndentation(t *testing.T) {
	prog := parser.MustParse("t.pas", `
program t;
var x: integer;
begin
  if x = 0 then begin
    x := 1;
    x := 2;
  end;
end.`)
	out := printer.Print(prog)
	if !strings.Contains(out, "then begin") {
		t.Errorf("compound after then:\n%s", out)
	}
	// Inner statements indented deeper than the if.
	lines := strings.Split(out, "\n")
	var ifIndent, innerIndent int
	for _, l := range lines {
		if strings.Contains(l, "if x = 0") {
			ifIndent = len(l) - len(strings.TrimLeft(l, " "))
		}
		if strings.Contains(l, "x := 1") {
			innerIndent = len(l) - len(strings.TrimLeft(l, " "))
		}
	}
	if innerIndent <= ifIndent {
		t.Errorf("inner indent %d not deeper than if indent %d:\n%s", innerIndent, ifIndent, out)
	}
}

func TestSetLitPrinting(t *testing.T) {
	e, err := parser.ParseExpr("[1, 2, 3]")
	if err != nil {
		t.Fatal(err)
	}
	if got := printer.PrintExpr(e); got != "[1, 2, 3]" {
		t.Errorf("set literal printed as %q", got)
	}
	if _, ok := e.(*ast.SetLit); !ok {
		t.Fatalf("parsed as %T", e)
	}
}
