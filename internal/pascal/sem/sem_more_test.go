package sem_test

import (
	"strings"
	"testing"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/types"
)

func TestConstDeclarations(t *testing.T) {
	info := analyze(t, `
program t;
const
  n = 10;
  m = n + 5;
  neg = -3;
  name = 'gadt';
  yes = true;
type
  arr = array [1 .. n] of integer;
var
  a: arr;
  s: string;
  b: boolean;
  x: integer;
begin
  a[n] := m;
  s := name;
  b := yes;
  x := neg;
end.`)
	// arr's bounds resolved from the constant.
	var at *types.Array
	for _, v := range info.Main.Locals {
		if v.Name == "a" {
			at = v.Type.(*types.Array)
		}
	}
	if at == nil || at.Hi != 10 {
		t.Fatalf("array type = %v, want hi=10 via const", at)
	}
}

func TestConstErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`program t; const c = x; begin end.`, "not a constant"},
		{`program t; var v: integer; const c = v; begin end.`, "not a constant"},
		{`program t; type a = array [1 .. 2.5] of integer; var v: a; begin v[1] := 0; end.`, "constant integer expected"},
	}
	for _, tc := range cases {
		prog, perr := parser.ParseProgram("t.pas", tc.src)
		if perr != nil {
			t.Fatalf("parse: %v", perr)
		}
		_, err := sem.Analyze(prog)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestTypeAliases(t *testing.T) {
	info := analyze(t, `
program t;
type
  count = integer;
  counts = array [1 .. 3] of count;
var
  c: count;
  cs: counts;
begin
  c := 1;
  cs[1] := c;
end.`)
	for _, v := range info.Main.Locals {
		if v.Name == "c" && !v.Type.Equal(types.Integer) {
			t.Errorf("alias type = %v", v.Type)
		}
	}
}

func TestRecordOfArrays(t *testing.T) {
	analyze(t, `
program t;
type
  row = array [1 .. 2] of integer;
  grid = record a, b: row; tag: string end;
var
  g: grid;
begin
  g.a[1] := 1;
  g.b[2] := g.a[1] + 1;
  g.tag := 'ok';
end.`)
}

func TestMultiDimIndex(t *testing.T) {
	analyze(t, `
program t;
type
  mat = array [1 .. 2] of array [1 .. 3] of integer;
var
  m: mat;
begin
  m[1][2] := 5;
  m[2, 3] := m[1][2];
end.`)
}

func TestBuiltinMisuse(t *testing.T) {
	cases := []struct{ src, want string }{
		{`program t; var x: integer; begin x := abs(true); end.`, "numeric argument"},
		{`program t; var b: boolean; begin b := odd(1.5); end.`, "integer argument"},
		{`program t; var x: integer; begin x := abs(1, 2); end.`, "expects 1 argument"},
		{`program t; begin abs(1); end.`, "called as a procedure"},
		{`program t; var x: integer; begin x := trunc(true); end.`, "numeric argument"},
	}
	for _, tc := range cases {
		prog, perr := parser.ParseProgram("t.pas", tc.src)
		if perr != nil {
			t.Fatalf("parse: %v", perr)
		}
		_, err := sem.Analyze(prog)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestReadRequiresVariable(t *testing.T) {
	prog := parser.MustParse("t.pas", `program t; begin read(42); end.`)
	_, err := sem.Analyze(prog)
	if err == nil || !strings.Contains(err.Error(), "not assignable") {
		t.Errorf("err = %v", err)
	}
}

func TestComparisonTypeErrors(t *testing.T) {
	cases := []string{
		`program t; var b: boolean; s: string; begin b := s < 1; end.`,
		`program t; var b: boolean; begin b := true < false; end.`,
		`program t; var b: boolean; s: string; begin b := (s = 1); end.`,
	}
	for _, src := range cases {
		prog, perr := parser.ParseProgram("t.pas", src)
		if perr != nil {
			t.Fatalf("parse: %v", perr)
		}
		if _, err := sem.Analyze(prog); err == nil {
			t.Errorf("%q: expected type error", src)
		}
	}
}

func TestCaseLabelTypeMismatch(t *testing.T) {
	prog := parser.MustParse("t.pas", `
program t;
var x: integer;
begin
  case x of
    'a': x := 1;
  end;
end.`)
	_, err := sem.Analyze(prog)
	if err == nil || !strings.Contains(err.Error(), "does not match selector") {
		t.Errorf("err = %v", err)
	}
}

func TestSetLitContexts(t *testing.T) {
	analyze(t, `
program t;
type arr = array [1 .. 5] of integer;
var a: arr;
procedure p(v: arr);
begin
end;
begin
  a := [1, 2, 3];
  p([4, 5]);
end.`)
	// Oversized display rejected.
	prog := parser.MustParse("t.pas", `
program t;
type arr = array [1 .. 2] of integer;
var a: arr;
begin
  a := [1, 2, 3];
end.`)
	if _, err := sem.Analyze(prog); err == nil {
		t.Error("oversized array display accepted")
	}
	// Mixed element types rejected.
	prog2 := parser.MustParse("t.pas", `
program t;
type arr = array [1 .. 3] of integer;
var a: arr;
begin
  a := [1, true, 3];
end.`)
	if _, err := sem.Analyze(prog2); err == nil {
		t.Error("mixed-type array display accepted")
	}
}

func TestLabeledStatementChecks(t *testing.T) {
	cases := []struct{ src, want string }{
		{`program t; label 9; var x: integer; begin 9: x := 1; 9: x := 2; goto 9; end.`, "placed more than once"},
		{`program t; var x: integer; begin 9: x := 1; end.`, "not declared"},
	}
	for _, tc := range cases {
		prog, perr := parser.ParseProgram("t.pas", tc.src)
		if perr != nil {
			t.Fatalf("parse: %v", perr)
		}
		_, err := sem.Analyze(prog)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestVarOfNonDesignators(t *testing.T) {
	info := analyze(t, `program t; var x: integer; begin x := 1 + 2; end.`)
	var rhs ast.Expr
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			rhs = as.Rhs
		}
		return true
	})
	if info.VarOf(rhs) != nil {
		t.Error("VarOf(1 + 2) should be nil")
	}
}

func TestEnclosingRoutineMap(t *testing.T) {
	info := analyze(t, `
program t;
var x: integer;
procedure p;
begin
  x := 1;
end;
begin
  p;
end.`)
	p := info.LookupRoutine("p")
	found := false
	for s, r := range info.EnclosingRoutine {
		if as, ok := s.(*ast.AssignStmt); ok && r == p {
			_ = as
			found = true
		}
	}
	if !found {
		t.Error("EnclosingRoutine lacks p's assignment")
	}
}

func TestMaxintAndPredeclared(t *testing.T) {
	analyze(t, `
program t;
var x: integer;
    b: boolean;
begin
  x := maxint;
  b := true;
  b := false;
end.`)
}

func TestFunctionMissingResultAssignment(t *testing.T) {
	// Pascal does not require it statically; we accept but the result
	// stays zero-valued. Just check analysis passes.
	analyze(t, `
program t;
var x: integer;
function f(n: integer): integer;
begin
  n := n + 1;
end;
begin
  x := f(1);
end.`)
}
