package sem

import (
	"fmt"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/token"
	"gadt/internal/pascal/types"
)

// Error is a semantic error at a position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Err returns nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Info is the result of semantic analysis.
type Info struct {
	Program  *ast.Program
	Main     *Routine   // pseudo-routine for the program block
	Routines []*Routine // all routines including Main, in pre-order

	RoutineOf map[*ast.Routine]*Routine // declaration → symbol
	Uses      map[*ast.Ident]Symbol     // identifier use → symbol
	Calls     map[ast.Node]*Routine     // CallStmt/CallExpr/Ident → user routine
	Builtin   map[ast.Node]*Builtin     // CallStmt/CallExpr → predeclared routine
	TypeOf    map[ast.Expr]types.Type
	GotoTgt   map[*ast.GotoStmt]*LabelInfo
	LabelOf   map[*ast.LabeledStmt]*LabelInfo
	// EnclosingRoutine maps every statement to the routine whose body
	// (directly) contains it.
	EnclosingRoutine map[ast.Stmt]*Routine

	Errors ErrorList

	// Resolution caches: dense UID-indexed mirrors of Uses, Calls and
	// Builtin, built at the end of Analyze. The interpreter resolves
	// identifiers and call targets through them without hashing; the
	// node slot is checked against the querying node, so a stale UID
	// (the AST was re-analyzed under another Info) falls back to the
	// maps instead of misresolving.
	useIdents    []*ast.Ident
	useSyms      []Symbol
	callNodes    []ast.Node
	callRoutines []*Routine
	callBuiltins []*Builtin
}

// UseOf resolves an identifier use to its symbol; equivalent to Uses[e]
// but without a map lookup when e carries a valid cache UID.
func (in *Info) UseOf(e *ast.Ident) Symbol {
	if uid := e.UID; uid > 0 && uid < len(in.useIdents) && in.useIdents[uid] == e {
		return in.useSyms[uid]
	}
	return in.Uses[e]
}

// CallAt resolves the user-routine target of a call node (nil for
// builtins or unresolved calls); equivalent to Calls[n] minus the map
// lookup. uid is the node's UID field.
func (in *Info) CallAt(uid int, n ast.Node) *Routine {
	if uid > 0 && uid < len(in.callNodes) && in.callNodes[uid] == n {
		return in.callRoutines[uid]
	}
	return in.Calls[n]
}

// BuiltinAt resolves the predeclared target of a call node (nil for user
// calls); equivalent to Builtin[n] minus the map lookup.
func (in *Info) BuiltinAt(uid int, n ast.Node) *Builtin {
	if uid > 0 && uid < len(in.callNodes) && in.callNodes[uid] == n {
		return in.callBuiltins[uid]
	}
	return in.Builtin[n]
}

// buildResolutionCache numbers every resolved node and mirrors the
// resolution maps into the UID-indexed slices.
func (in *Info) buildResolutionCache() {
	in.useIdents = make([]*ast.Ident, len(in.Uses)+1)
	in.useSyms = make([]Symbol, len(in.Uses)+1)
	uid := 0
	for id, sym := range in.Uses {
		uid++
		id.UID = uid
		in.useIdents[uid] = id
		in.useSyms[uid] = sym
	}
	n := len(in.Calls) + len(in.Builtin) + 1
	in.callNodes = make([]ast.Node, n)
	in.callRoutines = make([]*Routine, n)
	in.callBuiltins = make([]*Builtin, n)
	cid := 0
	number := func(node ast.Node) int {
		cid++
		switch node := node.(type) {
		case *ast.Ident:
			node.UID = cid
		case *ast.CallExpr:
			node.UID = cid
		case *ast.CallStmt:
			node.UID = cid
		}
		in.callNodes[cid] = node
		return cid
	}
	for node, r := range in.Calls {
		in.callRoutines[number(node)] = r
	}
	for node, b := range in.Builtin {
		in.callBuiltins[number(node)] = b
	}
}

// LookupRoutine finds a routine symbol by name, preferring the first
// declared match in pre-order. Returns nil when not found.
func (in *Info) LookupRoutine(name string) *Routine {
	for _, r := range in.Routines {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// VarOf resolves the base variable of a designator expression (an
// identifier possibly wrapped in index/field selections). Returns nil
// when e is not a designator rooted at a variable.
func (in *Info) VarOf(e ast.Expr) *VarSym {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if v, ok := in.UseOf(x).(*VarSym); ok {
				return v
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.FieldExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Analyze resolves and type-checks prog. The returned Info is usable even
// when errors are present (err is the non-empty error list).
func Analyze(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Program:          prog,
			RoutineOf:        make(map[*ast.Routine]*Routine),
			Uses:             make(map[*ast.Ident]Symbol),
			Calls:            make(map[ast.Node]*Routine),
			Builtin:          make(map[ast.Node]*Builtin),
			TypeOf:           make(map[ast.Expr]types.Type),
			GotoTgt:          make(map[*ast.GotoStmt]*LabelInfo),
			LabelOf:          make(map[*ast.LabeledStmt]*LabelInfo),
			EnclosingRoutine: make(map[ast.Stmt]*Routine),
		},
	}
	c.universe = newScope(nil)
	c.declareUniverse()

	main := &Routine{Name: prog.Name, Kind: ast.ProcKind, Block: prog.Block, Level: 0, Labels: make(map[string]*LabelInfo)}
	c.info.Main = main
	c.info.Routines = append(c.info.Routines, main)
	c.routineScope(main, c.universe)

	for _, r := range c.info.Routines {
		LayoutRoutine(r)
	}
	c.info.buildResolutionCache()

	return c.info, c.info.Errors.Err()
}

// LayoutRoutine (re)computes the activation-record layout of a routine,
// assigning each variable a dense frame-slot index in AllVars order
// (params, result, locals). Analyze runs it on every routine; callers
// that add variable symbols to a routine after analysis must rerun it
// before interpreting.
func LayoutRoutine(r *Routine) {
	vars := r.AllVars()
	for i, v := range vars {
		v.Slot = i
	}
	r.Frame = FrameLayout{Vars: vars}
}

type checker struct {
	info     *Info
	universe *scope
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.info.Errors = append(c.info.Errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) declareUniverse() {
	u := c.universe
	u.declare("integer", &TypeSym{Name: "integer", Type: types.Integer})
	u.declare("real", &TypeSym{Name: "real", Type: types.RealT})
	u.declare("boolean", &TypeSym{Name: "boolean", Type: types.Boolean})
	u.declare("string", &TypeSym{Name: "string", Type: types.String})
	u.declare("true", &ConstSym{Name: "true", Type: types.Boolean, Value: true})
	u.declare("false", &ConstSym{Name: "false", Type: types.Boolean, Value: false})
	u.declare("maxint", &ConstSym{Name: "maxint", Type: types.Integer, Value: int64(1<<63 - 1)})
	for name, b := range builtins {
		u.declare(name, b)
	}
}

// routineScope builds the scope of routine r (declared in parent scope
// outer), resolves its declarations, nested routines, and body.
func (c *checker) routineScope(r *Routine, outer *scope) {
	sc := newScope(outer)

	// Formal parameters.
	if r.Decl != nil {
		idx := 0
		for _, group := range r.Decl.Params {
			pt := c.resolveTypeExpr(group.Type, sc)
			for _, name := range group.Names {
				v := &VarSym{Name: name, Type: pt, Kind: ParamVar, Mode: group.Mode, Owner: r, Decl: group, Pos: group.Pos(), Index: idx}
				idx++
				if prev := sc.declare(name, v); prev != nil {
					c.errorf(group.Pos(), "duplicate parameter %s in %s", name, r.Name)
				}
				r.Params = append(r.Params, v)
			}
		}
		if r.Kind == ast.FuncKind {
			rt := c.resolveTypeExpr(r.Decl.Result, sc)
			r.Result = &VarSym{Name: r.Name, Type: rt, Kind: ResultVar, Owner: r, Decl: r.Decl, Pos: r.Decl.Pos()}
			// Note: the function name itself resolves to the routine;
			// assignment to it is special-cased in checkAssign.
		}
	}

	b := r.Block
	// Labels.
	for _, l := range b.Labels {
		li := &LabelInfo{Name: l.Name, Routine: r}
		if _, dup := r.Labels[l.Name]; dup {
			c.errorf(l.Pos(), "duplicate label %s", l.Name)
		}
		r.Labels[l.Name] = li
	}
	// Constants.
	for _, d := range b.Consts {
		t, v := c.constValue(d.Value, sc)
		sym := &ConstSym{Name: d.Name, Type: t, Value: v, Pos: d.Pos()}
		if prev := sc.declare(d.Name, sym); prev != nil {
			c.errorf(d.Pos(), "duplicate declaration of %s", d.Name)
		}
	}
	// Types.
	for _, d := range b.Types {
		t := c.resolveTypeExpr(d.Type, sc)
		sym := &TypeSym{Name: d.Name, Type: t, Pos: d.Pos()}
		if prev := sc.declare(d.Name, sym); prev != nil {
			c.errorf(d.Pos(), "duplicate declaration of %s", d.Name)
		}
	}
	// Variables.
	idx := 0
	for _, d := range b.Vars {
		t := c.resolveTypeExpr(d.Type, sc)
		for _, name := range d.Names {
			v := &VarSym{Name: name, Type: t, Kind: LocalVar, Owner: r, Decl: d, Pos: d.Pos(), Index: idx}
			idx++
			if prev := sc.declare(name, v); prev != nil {
				c.errorf(d.Pos(), "duplicate declaration of %s", name)
			}
			r.Locals = append(r.Locals, v)
		}
	}
	// Nested routines: declare all names first (allowing mutual
	// recursion without forward declarations, a small liberalization of
	// Pascal), then analyze bodies.
	var nested []*Routine
	for _, rd := range b.Routines {
		nr := &Routine{
			Name:      rd.Name,
			Kind:      rd.Kind,
			Decl:      rd,
			Block:     rd.Block,
			Parent:    r,
			Level:     r.Level + 1,
			Labels:    make(map[string]*LabelInfo),
			Synthetic: rd.Synthetic,
		}
		c.info.RoutineOf[rd] = nr
		if prev := sc.declare(rd.Name, nr); prev != nil {
			c.errorf(rd.Pos(), "duplicate declaration of %s", rd.Name)
		}
		r.Nested = append(r.Nested, nr)
		nested = append(nested, nr)
	}
	for _, nr := range nested {
		c.info.Routines = append(c.info.Routines, nr)
		c.routineScope(nr, sc)
	}

	// Body.
	c.checkStmt(b.Body, r, sc)

	// All gotos inside this routine chain were resolved during
	// checkStmt; verify that every declared label was placed.
	for _, li := range r.Labels {
		if li.Placement == nil {
			c.errorf(r.SymPos(), "label %s declared but not placed in %s", li.Name, r.Name)
		}
	}
}

func (c *checker) resolveTypeExpr(te ast.TypeExpr, sc *scope) types.Type {
	switch te := te.(type) {
	case nil:
		return types.Bad
	case *ast.NamedType:
		sym := sc.lookup(te.Name)
		if sym == nil {
			c.errorf(te.Pos(), "undeclared type %s", te.Name)
			return types.Bad
		}
		ts, ok := sym.(*TypeSym)
		if !ok {
			c.errorf(te.Pos(), "%s is not a type", te.Name)
			return types.Bad
		}
		return ts.Type
	case *ast.ArrayType:
		lo, loOK := c.constInt(te.Lo, sc)
		hi, hiOK := c.constInt(te.Hi, sc)
		elem := c.resolveTypeExpr(te.Elem, sc)
		if !loOK || !hiOK {
			return types.Bad
		}
		if hi < lo {
			c.errorf(te.Pos(), "array upper bound %d below lower bound %d", hi, lo)
			return types.Bad
		}
		return &types.Array{Lo: lo, Hi: hi, Elem: elem}
	case *ast.RecordType:
		rt := &types.Record{}
		seen := map[string]bool{}
		for _, f := range te.Fields {
			ft := c.resolveTypeExpr(f.Type, sc)
			for _, name := range f.Names {
				if seen[name] {
					c.errorf(f.Pos(), "duplicate field %s", name)
					continue
				}
				seen[name] = true
				rt.Fields = append(rt.Fields, types.Field{Name: name, Type: ft})
			}
		}
		return rt
	}
	return types.Bad
}

// constValue evaluates a compile-time constant expression.
func (c *checker) constValue(e ast.Expr, sc *scope) (types.Type, any) {
	switch e := e.(type) {
	case *ast.IntLit:
		return types.Integer, e.Value
	case *ast.RealLit:
		return types.RealT, e.Value
	case *ast.StringLit:
		return types.String, e.Value
	case *ast.Ident:
		if sym, ok := sc.lookup(e.Name).(*ConstSym); ok && sym != nil {
			c.info.Uses[e] = sym
			return sym.Type, sym.Value
		}
		c.errorf(e.Pos(), "%s is not a constant", e.Name)
		return types.Bad, nil
	case *ast.UnaryExpr:
		t, v := c.constValue(e.X, sc)
		switch v := v.(type) {
		case int64:
			if e.Op == token.Minus {
				return t, -v
			}
			if e.Op == token.Plus {
				return t, v
			}
		case float64:
			if e.Op == token.Minus {
				return t, -v
			}
			if e.Op == token.Plus {
				return t, v
			}
		case bool:
			if e.Op == token.Not {
				return t, !v
			}
		}
		c.errorf(e.Pos(), "invalid constant operand")
		return types.Bad, nil
	case *ast.BinaryExpr:
		_, x := c.constValue(e.X, sc)
		_, y := c.constValue(e.Y, sc)
		xi, xOK := x.(int64)
		yi, yOK := y.(int64)
		if xOK && yOK {
			switch e.Op {
			case token.Plus:
				return types.Integer, xi + yi
			case token.Minus:
				return types.Integer, xi - yi
			case token.Star:
				return types.Integer, xi * yi
			case token.Div:
				if yi != 0 {
					return types.Integer, xi / yi
				}
			}
		}
		c.errorf(e.Pos(), "unsupported constant expression")
		return types.Bad, nil
	}
	c.errorf(e.Pos(), "not a constant expression")
	return types.Bad, nil
}

func (c *checker) constInt(e ast.Expr, sc *scope) (int64, bool) {
	t, v := c.constValue(e, sc)
	if !types.IsInteger(t) {
		c.errorf(e.Pos(), "constant integer expected")
		return 0, false
	}
	i, ok := v.(int64)
	return i, ok
}

// ---------------------------------------------------------------------------
// Statement checking

func (c *checker) checkStmt(s ast.Stmt, r *Routine, sc *scope) {
	if s == nil {
		return
	}
	c.info.EnclosingRoutine[s] = r
	switch s := s.(type) {
	case *ast.CompoundStmt:
		for _, cs := range s.Stmts {
			c.checkStmt(cs, r, sc)
		}
	case *ast.AssignStmt:
		c.checkAssign(s, r, sc)
	case *ast.CallStmt:
		c.checkCall(s, s.Name, s.Args, s.Pos(), r, sc, true)
	case *ast.IfStmt:
		c.checkCond(s.Cond, r, sc)
		c.checkStmt(s.Then, r, sc)
		c.checkStmt(s.Else, r, sc)
	case *ast.WhileStmt:
		c.checkCond(s.Cond, r, sc)
		c.checkStmt(s.Body, r, sc)
	case *ast.RepeatStmt:
		for _, cs := range s.Stmts {
			c.checkStmt(cs, r, sc)
		}
		c.checkCond(s.Cond, r, sc)
	case *ast.ForStmt:
		vt := c.checkExpr(s.Var, r, sc)
		if !types.IsInteger(vt) && vt != types.Bad {
			c.errorf(s.Var.Pos(), "for-loop variable %s must be integer, have %s", s.Var.Name, vt)
		}
		if v := c.info.VarOf(s.Var); v == nil {
			c.errorf(s.Var.Pos(), "for-loop control %s is not a variable", s.Var.Name)
		}
		ft := c.checkExpr(s.From, r, sc)
		lt := c.checkExpr(s.Limit, r, sc)
		if !types.IsInteger(ft) && ft != types.Bad {
			c.errorf(s.From.Pos(), "for-loop bound must be integer, have %s", ft)
		}
		if !types.IsInteger(lt) && lt != types.Bad {
			c.errorf(s.Limit.Pos(), "for-loop bound must be integer, have %s", lt)
		}
		c.checkStmt(s.Body, r, sc)
	case *ast.CaseStmt:
		et := c.checkExpr(s.Expr, r, sc)
		for _, arm := range s.Arms {
			for _, ce := range arm.Consts {
				ct := c.checkExpr(ce, r, sc)
				if et != types.Bad && ct != types.Bad && !ct.Equal(et) {
					c.errorf(ce.Pos(), "case label type %s does not match selector type %s", ct, et)
				}
			}
			c.checkStmt(arm.Body, r, sc)
		}
		c.checkStmt(s.Else, r, sc)
	case *ast.GotoStmt:
		li := c.findLabel(r, s.Label)
		if li == nil {
			c.errorf(s.Pos(), "goto to undeclared label %s", s.Label)
			return
		}
		c.info.GotoTgt[s] = li
	case *ast.LabeledStmt:
		li, ok := r.Labels[s.Label]
		if !ok {
			c.errorf(s.Pos(), "label %s not declared in %s", s.Label, r.Name)
		} else if li.Placement != nil {
			c.errorf(s.Pos(), "label %s placed more than once", s.Label)
		} else {
			li.Placement = s
			c.info.LabelOf[s] = li
		}
		c.checkStmt(s.Stmt, r, sc)
	case *ast.EmptyStmt:
		// nothing
	}
}

func (c *checker) findLabel(r *Routine, name string) *LabelInfo {
	for ; r != nil; r = r.Parent {
		if li, ok := r.Labels[name]; ok {
			return li
		}
	}
	return nil
}

func (c *checker) checkCond(e ast.Expr, r *Routine, sc *scope) {
	t := c.checkExpr(e, r, sc)
	if !types.IsBoolean(t) && t != types.Bad {
		c.errorf(e.Pos(), "condition must be boolean, have %s", t)
	}
}

func (c *checker) checkAssign(s *ast.AssignStmt, r *Routine, sc *scope) {
	// Special case: assignment to the enclosing function's name sets the
	// result.
	if id, ok := s.Lhs.(*ast.Ident); ok {
		for fr := r; fr != nil; fr = fr.Parent {
			if fr.Kind == ast.FuncKind && fr.Name == id.Name && fr.Result != nil {
				c.info.Uses[id] = fr.Result
				c.info.TypeOf[id] = fr.Result.Type
				rt := c.checkExpr(s.Rhs, r, sc)
				if rt != types.Bad && !types.AssignableTo(rt, fr.Result.Type) {
					c.errorf(s.Pos(), "cannot assign %s result to function %s of type %s", rt, fr.Name, fr.Result.Type)
				}
				return
			}
		}
	}
	lt := c.checkLValue(s.Lhs, r, sc)
	rt := c.checkExpr(s.Rhs, r, sc)
	if lt == types.Bad || rt == types.Bad {
		return
	}
	if !types.AssignableTo(rt, lt) {
		// Array displays are assignable to matching arrays.
		if sl, ok := s.Rhs.(*ast.SetLit); ok {
			if at, isArr := lt.(*types.Array); isArr && c.setLitFits(sl, at) {
				return
			}
		}
		c.errorf(s.Pos(), "cannot assign %s to %s", rt, lt)
	}
}

func (c *checker) setLitFits(sl *ast.SetLit, at *types.Array) bool {
	if int64(len(sl.Elems)) > at.Len() {
		return false
	}
	for _, e := range sl.Elems {
		t := c.info.TypeOf[e]
		if t == nil || !types.AssignableTo(t, at.Elem) {
			return false
		}
	}
	return true
}

// checkLValue checks a designator used as an assignment target or as a
// var/out argument and returns its type.
func (c *checker) checkLValue(e ast.Expr, r *Routine, sc *scope) types.Type {
	t := c.checkExpr(e, r, sc)
	v := c.info.VarOf(e)
	if v == nil {
		c.errorf(e.Pos(), "expression is not assignable")
		return types.Bad
	}
	return t
}

// checkCall checks a call to name with the given args. stmtCtx is true
// for procedure-statement position. Returns the result type (Bad for
// procedures).
func (c *checker) checkCall(node ast.Node, name string, args []ast.Expr, pos token.Pos, r *Routine, sc *scope, stmtCtx bool) types.Type {
	sym := sc.lookup(name)
	switch sym := sym.(type) {
	case nil:
		c.errorf(pos, "call to undeclared routine %s", name)
		for _, a := range args {
			c.checkExpr(a, r, sc)
		}
		return types.Bad
	case *Builtin:
		c.info.Builtin[node] = sym
		return c.checkBuiltinCall(sym, args, pos, r, sc, stmtCtx)
	case *Routine:
		c.info.Calls[node] = sym
		if stmtCtx && sym.Kind == ast.FuncKind {
			c.errorf(pos, "function %s called as a procedure", name)
		}
		if !stmtCtx && sym.Kind == ast.ProcKind {
			c.errorf(pos, "procedure %s used in an expression", name)
		}
		if len(args) != len(sym.Params) {
			c.errorf(pos, "%s expects %d argument(s), got %d", name, len(sym.Params), len(args))
		}
		for i, a := range args {
			at := c.checkExpr(a, r, sc)
			if i >= len(sym.Params) {
				continue
			}
			p := sym.Params[i]
			if p.Mode != ast.Value {
				if v := c.info.VarOf(a); v == nil {
					c.errorf(a.Pos(), "argument %d of %s must be a variable (%s parameter %s)", i+1, name, p.Mode, p.Name)
					continue
				}
				if at != types.Bad && !at.Equal(p.Type) {
					c.errorf(a.Pos(), "argument %d of %s: %s parameter %s requires exactly %s, have %s", i+1, name, p.Mode, p.Name, p.Type, at)
				}
				continue
			}
			if at == types.Bad {
				continue
			}
			if !types.AssignableTo(at, p.Type) {
				if sl, ok := a.(*ast.SetLit); ok {
					if arr, isArr := p.Type.(*types.Array); isArr && c.setLitFits(sl, arr) {
						c.info.TypeOf[a] = arr
						continue
					}
				}
				c.errorf(a.Pos(), "argument %d of %s: cannot pass %s as %s", i+1, name, at, p.Type)
			}
		}
		if sym.Kind == ast.FuncKind && sym.Result != nil {
			return sym.Result.Type
		}
		return types.Bad
	default:
		c.errorf(pos, "%s is not a routine", name)
		return types.Bad
	}
}

func (c *checker) checkBuiltinCall(b *Builtin, args []ast.Expr, pos token.Pos, r *Routine, sc *scope, stmtCtx bool) types.Type {
	switch b.Name {
	case "read", "readln":
		for _, a := range args {
			c.checkLValue(a, r, sc)
		}
		return types.Bad
	case "write", "writeln":
		for _, a := range args {
			c.checkExpr(a, r, sc)
		}
		return types.Bad
	}
	if stmtCtx {
		c.errorf(pos, "function %s called as a procedure", b.Name)
	}
	if len(args) != 1 {
		c.errorf(pos, "%s expects 1 argument, got %d", b.Name, len(args))
		return types.Bad
	}
	at := c.checkExpr(args[0], r, sc)
	switch b.Name {
	case "abs", "sqr":
		if !types.IsNumeric(at) && at != types.Bad {
			c.errorf(pos, "%s requires a numeric argument, have %s", b.Name, at)
			return types.Bad
		}
		return at
	case "odd":
		if !types.IsInteger(at) && at != types.Bad {
			c.errorf(pos, "odd requires an integer argument, have %s", at)
		}
		return types.Boolean
	case "trunc", "round":
		if !types.IsNumeric(at) && at != types.Bad {
			c.errorf(pos, "%s requires a numeric argument, have %s", b.Name, at)
		}
		return types.Integer
	}
	return types.Bad
}

// ---------------------------------------------------------------------------
// Expression checking

func (c *checker) checkExpr(e ast.Expr, r *Routine, sc *scope) types.Type {
	t := c.exprType(e, r, sc)
	c.info.TypeOf[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr, r *Routine, sc *scope) types.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return types.Integer
	case *ast.RealLit:
		return types.RealT
	case *ast.StringLit:
		return types.String
	case *ast.Ident:
		sym := sc.lookup(e.Name)
		switch sym := sym.(type) {
		case nil:
			c.errorf(e.Pos(), "undeclared identifier %s", e.Name)
			return types.Bad
		case *VarSym:
			c.info.Uses[e] = sym
			return sym.Type
		case *ConstSym:
			c.info.Uses[e] = sym
			return sym.Type
		case *Routine:
			// Parameterless function call in expression position.
			if sym.Kind == ast.FuncKind {
				if len(sym.Params) != 0 {
					c.errorf(e.Pos(), "function %s requires arguments", e.Name)
				}
				c.info.Calls[e] = sym
				if sym.Result != nil {
					return sym.Result.Type
				}
				return types.Bad
			}
			c.errorf(e.Pos(), "procedure %s used in an expression", e.Name)
			return types.Bad
		default:
			c.errorf(e.Pos(), "%s cannot be used in an expression", e.Name)
			return types.Bad
		}
	case *ast.BinaryExpr:
		xt := c.checkExpr(e.X, r, sc)
		yt := c.checkExpr(e.Y, r, sc)
		return c.binaryType(e, xt, yt)
	case *ast.UnaryExpr:
		xt := c.checkExpr(e.X, r, sc)
		switch e.Op {
		case token.Minus, token.Plus:
			if !types.IsNumeric(xt) && xt != types.Bad {
				c.errorf(e.Pos(), "unary %s requires a numeric operand, have %s", e.Op, xt)
				return types.Bad
			}
			return xt
		case token.Not:
			if !types.IsBoolean(xt) && xt != types.Bad {
				c.errorf(e.Pos(), "not requires a boolean operand, have %s", xt)
				return types.Bad
			}
			return types.Boolean
		}
		return types.Bad
	case *ast.IndexExpr:
		xt := c.checkExpr(e.X, r, sc)
		for _, ie := range e.Indices {
			it := c.checkExpr(ie, r, sc)
			if !types.IsInteger(it) && it != types.Bad {
				c.errorf(ie.Pos(), "array index must be integer, have %s", it)
			}
			at, ok := xt.(*types.Array)
			if !ok {
				if xt != types.Bad {
					c.errorf(e.Pos(), "indexing non-array type %s", xt)
				}
				return types.Bad
			}
			xt = at.Elem
		}
		return xt
	case *ast.FieldExpr:
		xt := c.checkExpr(e.X, r, sc)
		rt, ok := xt.(*types.Record)
		if !ok {
			if xt != types.Bad {
				c.errorf(e.Pos(), "selecting field %s of non-record type %s", e.Field, xt)
			}
			return types.Bad
		}
		ft := rt.Lookup(e.Field)
		if ft == nil {
			c.errorf(e.Pos(), "record has no field %s", e.Field)
			return types.Bad
		}
		return ft
	case *ast.CallExpr:
		return c.checkCall(e, e.Name, e.Args, e.Pos(), r, sc, false)
	case *ast.SetLit:
		// An array display: element type is the common element type;
		// the full array type is imposed by context (assignment or
		// parameter passing).
		var et types.Type = types.Bad
		for _, el := range e.Elems {
			t := c.checkExpr(el, r, sc)
			if et == types.Bad {
				et = t
			} else if t != types.Bad && !t.Equal(et) {
				c.errorf(el.Pos(), "mixed element types %s and %s in array display", et, t)
			}
		}
		if et == types.Bad && len(e.Elems) > 0 {
			return types.Bad
		}
		if len(e.Elems) == 0 {
			return &types.Array{Lo: 1, Hi: 0, Elem: types.Integer}
		}
		return &types.Array{Lo: 1, Hi: int64(len(e.Elems)), Elem: et}
	}
	return types.Bad
}

func (c *checker) binaryType(e *ast.BinaryExpr, xt, yt types.Type) types.Type {
	if xt == types.Bad || yt == types.Bad {
		return types.Bad
	}
	switch e.Op {
	case token.Plus, token.Minus, token.Star:
		// String concatenation with + is a common dialect extension.
		if e.Op == token.Plus && xt.Equal(types.String) && yt.Equal(types.String) {
			return types.String
		}
		t := types.Arith(xt, yt)
		if t == types.Bad {
			c.errorf(e.Pos(), "operator %s requires numeric operands, have %s and %s", e.Op, xt, yt)
		}
		return t
	case token.Slash:
		if !types.IsNumeric(xt) || !types.IsNumeric(yt) {
			c.errorf(e.Pos(), "operator / requires numeric operands, have %s and %s", xt, yt)
			return types.Bad
		}
		return types.RealT
	case token.Div, token.Mod:
		if !types.IsInteger(xt) || !types.IsInteger(yt) {
			c.errorf(e.Pos(), "operator %s requires integer operands, have %s and %s", e.Op, xt, yt)
			return types.Bad
		}
		return types.Integer
	case token.And, token.Or:
		if !types.IsBoolean(xt) || !types.IsBoolean(yt) {
			c.errorf(e.Pos(), "operator %s requires boolean operands, have %s and %s", e.Op, xt, yt)
			return types.Bad
		}
		return types.Boolean
	case token.Eq, token.NotEq:
		if !xt.Equal(yt) && types.Arith(xt, yt) == types.Bad {
			c.errorf(e.Pos(), "cannot compare %s with %s", xt, yt)
			return types.Bad
		}
		return types.Boolean
	case token.Less, token.LessEq, token.Greater, token.GreatEq:
		ok := (types.IsOrdered(xt) && types.IsOrdered(yt)) &&
			(xt.Equal(yt) || types.Arith(xt, yt) != types.Bad)
		if !ok {
			c.errorf(e.Pos(), "cannot order %s against %s", xt, yt)
			return types.Bad
		}
		return types.Boolean
	}
	return types.Bad
}
