package sem_test

import (
	"strings"
	"testing"

	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/types"
)

func analyze(t *testing.T, src string) *sem.Info {
	t.Helper()
	prog, err := parser.ParseProgram("test.pas", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func TestAnalyzePaperPrograms(t *testing.T) {
	for name, src := range map[string]string{
		"sqrtest":      paper.Sqrtest,
		"sqrtestFixed": paper.SqrtestFixed,
		"sliceExample": paper.SliceExample,
		"pqr":          paper.PQR,
		"globals":      paper.GlobalSideEffects,
		"globalGoto":   paper.GlobalGoto,
		"loopGoto":     paper.LoopGoto,
		"arrsum":       paper.ArrsumProgram,
	} {
		t.Run(name, func(t *testing.T) {
			analyze(t, src)
		})
	}
}

func TestSqrtestSymbols(t *testing.T) {
	info := analyze(t, paper.Sqrtest)
	if info.Main.Name != "main" {
		t.Errorf("main routine name = %q, want main", info.Main.Name)
	}
	// 13 routines declared in the program plus the program block.
	if got, want := len(info.Routines), 14; got != want {
		t.Errorf("routine count = %d, want %d", got, want)
	}
	dec := info.LookupRoutine("decrement")
	if dec == nil {
		t.Fatal("decrement not found")
	}
	if dec.Kind != ast.FuncKind {
		t.Errorf("decrement kind = %v, want function", dec.Kind)
	}
	if dec.Result == nil || !dec.Result.Type.Equal(types.Integer) {
		t.Errorf("decrement result = %v, want integer", dec.Result)
	}
	if len(dec.Params) != 1 || dec.Params[0].Name != "y" {
		t.Errorf("decrement params = %v", dec.Params)
	}
	sq := info.LookupRoutine("sqrtest")
	if sq == nil {
		t.Fatal("sqrtest not found")
	}
	if len(sq.Params) != 3 {
		t.Fatalf("sqrtest params = %d, want 3", len(sq.Params))
	}
	if sq.Params[2].Mode != ast.VarMode {
		t.Errorf("sqrtest isok param mode = %v, want var", sq.Params[2].Mode)
	}
	if len(sq.Locals) != 3 {
		t.Errorf("sqrtest locals = %d, want 3 (r1, r2, t)", len(sq.Locals))
	}
}

func TestNestingLevels(t *testing.T) {
	info := analyze(t, paper.GlobalGoto)
	p := info.LookupRoutine("p")
	q := info.LookupRoutine("q")
	if p == nil || q == nil {
		t.Fatal("p or q not found")
	}
	if p.Level != 1 || q.Level != 2 {
		t.Errorf("levels p=%d q=%d, want 1 and 2", p.Level, q.Level)
	}
	if q.Parent != p {
		t.Errorf("q.Parent = %v, want p", q.Parent)
	}
}

func TestGotoResolution(t *testing.T) {
	info := analyze(t, paper.GlobalGoto)
	var gotos []*ast.GotoStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if g, ok := n.(*ast.GotoStmt); ok {
			gotos = append(gotos, g)
		}
		return true
	})
	if len(gotos) != 2 {
		t.Fatalf("found %d gotos, want 2", len(gotos))
	}
	for _, g := range gotos {
		li := info.GotoTgt[g]
		if li == nil {
			t.Fatalf("goto %s unresolved", g.Label)
		}
		switch g.Label {
		case "9":
			if li.Routine.Name != "p" {
				t.Errorf("goto 9 resolves to %s, want p", li.Routine.Name)
			}
		case "8":
			if !li.Routine.IsProgram() {
				t.Errorf("goto 8 resolves to %s, want program block", li.Routine.Name)
			}
		}
	}
}

func TestFunctionResultAssignment(t *testing.T) {
	info := analyze(t, paper.Sqrtest)
	dec := info.LookupRoutine("decrement")
	var found bool
	ast.Inspect(dec.Decl, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		id, ok := as.Lhs.(*ast.Ident)
		if !ok || id.Name != "decrement" {
			return true
		}
		found = true
		sym := info.Uses[id]
		v, ok := sym.(*sem.VarSym)
		if !ok || v.Kind != sem.ResultVar {
			t.Errorf("decrement := ... resolves to %v, want result var", sym)
		}
		return true
	})
	if !found {
		t.Error("no assignment to function result found")
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclaredVar", `program t; begin x := 1; end.`, "undeclared identifier x"},
		{"undeclaredProc", `program t; begin f(1); end.`, "undeclared routine f"},
		{"typeMismatch", `program t; var b: boolean; begin b := 3; end.`, "cannot assign integer to boolean"},
		{"badCond", `program t; var x: integer; begin if x then x := 1; end.`, "condition must be boolean"},
		{"argCount", `program t; procedure p(a: integer); begin end; begin p(1, 2); end.`, "expects 1 argument"},
		{"varArgNotVariable", `program t; procedure p(var a: integer); begin a := 0; end; begin p(3); end.`, "must be a variable"},
		{"funcAsProc", `program t; function f: integer; begin f := 1; end; begin f; end.`, "called as a procedure"},
		{"procInExpr", `program t; var x: integer; procedure p; begin end; begin x := p; end.`, "used in an expression"},
		{"divReal", `program t; var r: real; begin r := 1.5 div 2; end.`, "requires integer operands"},
		{"dupParam", `program t; procedure p(a, a: integer); begin end; begin p(1, 2); end.`, "duplicate parameter"},
		{"dupVar", `program t; var x: integer; var x: integer; begin x := 1; end.`, "duplicate declaration"},
		{"badLabel", `program t; begin goto 9; end.`, "undeclared label"},
		{"unplacedLabel", `program t; label 9; begin goto 9; end.`, "declared but not placed"},
		{"forNonInt", `program t; var b: boolean; begin for b := 1 to 3 do b := true; end.`, "must be integer"},
		{"indexNonArray", `program t; var x: integer; begin x := x[1]; end.`, "indexing non-array"},
		{"badField", `program t; type r = record a: integer end; var v: r; var x: integer; begin x := v.b; end.`, "no field b"},
		{"undeclaredType", `program t; var x: foo; begin x := 1; end.`, "undeclared type foo"},
		{"arrayBounds", `program t; type a = array [5 .. 2] of integer; var v: a; begin v[1] := 0; end.`, "below lower bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, perr := parser.ParseProgram("err.pas", tc.src)
			if perr != nil {
				t.Fatalf("unexpected parse error: %v", perr)
			}
			_, err := sem.Analyze(prog)
			if err == nil {
				t.Fatalf("expected error containing %q, got none", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestVarOf(t *testing.T) {
	info := analyze(t, `
program t;
type r = record f: integer end;
type a = array [1 .. 3] of r;
var v: a;
begin
  v[1].f := 42;
end.`)
	var assign *ast.AssignStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if s, ok := n.(*ast.AssignStmt); ok {
			assign = s
		}
		return true
	})
	if assign == nil {
		t.Fatal("no assignment found")
	}
	v := info.VarOf(assign.Lhs)
	if v == nil || v.Name != "v" {
		t.Errorf("VarOf(v[1].f) = %v, want v", v)
	}
}

func TestIntToRealWidening(t *testing.T) {
	analyze(t, `
program t;
var r: real; i: integer;
begin
  i := 2;
  r := i;
  r := i + 1.5;
  r := i / 2;
end.`)
}

func TestCaseStatement(t *testing.T) {
	info := analyze(t, `
program t;
var x, y: integer;
begin
  case x of
    1: y := 10;
    2, 3: y := 20;
  else y := 0;
  end;
end.`)
	var cs *ast.CaseStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if s, ok := n.(*ast.CaseStmt); ok {
			cs = s
		}
		return true
	})
	if cs == nil {
		t.Fatal("case statement not found")
	}
	if len(cs.Arms) != 2 || cs.Else == nil {
		t.Errorf("case arms = %d (want 2), else = %v (want non-nil)", len(cs.Arms), cs.Else)
	}
}

func TestRecursiveFunction(t *testing.T) {
	info := analyze(t, `
program t;
var x: integer;

function fact(n: integer): integer;
begin
  if n <= 1 then
    fact := 1
  else
    fact := n * fact(n - 1);
end;

begin
  x := fact(5);
end.`)
	f := info.LookupRoutine("fact")
	if f == nil {
		t.Fatal("fact not found")
	}
}
