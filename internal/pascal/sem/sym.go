// Package sem implements name resolution and type checking for the GADT
// Pascal subset.
//
// Analyze produces an Info value: symbol tables, use/def resolution of
// identifiers, call targets, expression types and goto targets. All
// downstream phases (interpreter, flow analysis, side-effect analysis,
// slicing, transformation) consume Info rather than re-deriving scope
// information.
package sem

import (
	"fmt"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/token"
	"gadt/internal/pascal/types"
)

// Symbol is the interface implemented by all named program entities.
type Symbol interface {
	SymName() string
	SymPos() token.Pos
}

// VarKind classifies variable symbols.
type VarKind int

const (
	LocalVar  VarKind = iota // declared in a routine's (or the program's) var part
	ParamVar                 // formal parameter
	ResultVar                // implicit function-result variable
)

func (k VarKind) String() string {
	switch k {
	case ParamVar:
		return "param"
	case ResultVar:
		return "result"
	}
	return "var"
}

// VarSym is a variable, formal parameter, or function-result symbol.
type VarSym struct {
	Name  string
	Type  types.Type
	Kind  VarKind
	Mode  ast.ParamMode // meaningful for ParamVar
	Owner *Routine      // routine whose scope declares the symbol
	Decl  ast.Node      // *ast.VarDecl, *ast.Param or *ast.Routine (result)
	Pos   token.Pos
	// Index is the position among the owner's params (ParamVar) or
	// locals (LocalVar), assigned in declaration order.
	Index int
	// Slot is the dense frame-slot index assigned by the layout pass:
	// the interpreter stores this variable at Owner's frame slot Slot
	// (params first, then the result variable, then locals — AllVars
	// order). Assigned by Analyze via layoutFrames.
	Slot int
}

func (v *VarSym) SymName() string   { return v.Name }
func (v *VarSym) SymPos() token.Pos { return v.Pos }
func (v *VarSym) String() string    { return fmt.Sprintf("%s %s: %s", v.Kind, v.Name, v.Type) }
func (v *VarSym) IsParam() bool     { return v.Kind == ParamVar }
func (v *VarSym) IsByRef() bool     { return v.Kind == ParamVar && v.Mode != ast.Value }

// ConstSym is a named constant.
type ConstSym struct {
	Name  string
	Type  types.Type
	Value any // int64, float64, bool or string
	Pos   token.Pos
}

func (c *ConstSym) SymName() string   { return c.Name }
func (c *ConstSym) SymPos() token.Pos { return c.Pos }

// TypeSym is a named type.
type TypeSym struct {
	Name string
	Type types.Type
	Pos  token.Pos
}

func (t *TypeSym) SymName() string   { return t.Name }
func (t *TypeSym) SymPos() token.Pos { return t.Pos }

// Routine is the symbol for a procedure, function, or the program block
// itself (the pseudo-routine Main, which behaves as an outermost
// parameterless procedure).
type Routine struct {
	Name   string
	Kind   ast.RoutineKind
	Decl   *ast.Routine // nil for the program pseudo-routine
	Block  *ast.Block
	Parent *Routine
	Level  int // nesting depth; program block is 0
	Nested []*Routine

	Params []*VarSym // flattened, in declaration order
	Locals []*VarSym
	Result *VarSym // non-nil iff Kind == FuncKind

	Labels map[string]*LabelInfo // labels declared by this routine

	// Synthetic marks transformer-generated routines (loop units).
	Synthetic bool

	// Frame is the precomputed activation-record layout (slot count and
	// the variable owning each slot), filled in by the layout pass at
	// the end of Analyze. The interpreter sizes its slot-addressed
	// frames from it instead of probing per-variable maps.
	Frame FrameLayout
}

// FrameLayout is the activation-record layout of one routine: Vars[i] is
// the variable stored in frame slot i (and Vars[i].Slot == i).
type FrameLayout struct {
	Vars []*VarSym
}

// Slots returns the number of frame slots the routine needs.
func (l FrameLayout) Slots() int { return len(l.Vars) }

func (r *Routine) SymName() string { return r.Name }
func (r *Routine) SymPos() token.Pos {
	if r.Decl != nil {
		return r.Decl.Pos()
	}
	return r.Block.Pos()
}

// IsProgram reports whether r is the program pseudo-routine.
func (r *Routine) IsProgram() bool { return r.Decl == nil }

// AllVars returns the routine's parameters, result variable (if any) and
// locals, in that order.
func (r *Routine) AllVars() []*VarSym {
	out := make([]*VarSym, 0, len(r.Params)+len(r.Locals)+1)
	out = append(out, r.Params...)
	if r.Result != nil {
		out = append(out, r.Result)
	}
	out = append(out, r.Locals...)
	return out
}

// LabelInfo describes one declared label.
type LabelInfo struct {
	Name    string
	Routine *Routine
	// Placement is the labeled statement carrying the label, when found.
	Placement *ast.LabeledStmt
}

// BuiltinOp enumerates the predeclared routines, so the interpreter
// dispatches on a small integer instead of the routine name.
type BuiltinOp uint8

const (
	BuiltinNone BuiltinOp = iota
	BuiltinRead
	BuiltinReadln
	BuiltinWrite
	BuiltinWriteln
	BuiltinAbs
	BuiltinSqr
	BuiltinOdd
	BuiltinTrunc
	BuiltinRound
)

// Builtin identifies a predeclared routine.
type Builtin struct {
	Name string
	Code BuiltinOp
	Proc bool // procedure (write/read family) vs function
}

func (b *Builtin) SymName() string   { return b.Name }
func (b *Builtin) SymPos() token.Pos { return token.Pos{} }

// The predeclared routines.
var builtins = map[string]*Builtin{
	"read":    {Name: "read", Code: BuiltinRead, Proc: true},
	"readln":  {Name: "readln", Code: BuiltinReadln, Proc: true},
	"write":   {Name: "write", Code: BuiltinWrite, Proc: true},
	"writeln": {Name: "writeln", Code: BuiltinWriteln, Proc: true},
	"abs":     {Name: "abs", Code: BuiltinAbs},
	"sqr":     {Name: "sqr", Code: BuiltinSqr},
	"odd":     {Name: "odd", Code: BuiltinOdd},
	"trunc":   {Name: "trunc", Code: BuiltinTrunc},
	"round":   {Name: "round", Code: BuiltinRound},
}

// LookupBuiltin returns the predeclared routine with the given name.
func LookupBuiltin(name string) *Builtin { return builtins[name] }

// scope is one lexical scope level.
type scope struct {
	parent *scope
	names  map[string]Symbol
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: make(map[string]Symbol)}
}

func (s *scope) declare(name string, sym Symbol) Symbol {
	if prev, ok := s.names[name]; ok {
		return prev
	}
	s.names[name] = sym
	return nil
}

func (s *scope) lookup(name string) Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			return sym
		}
	}
	return nil
}
