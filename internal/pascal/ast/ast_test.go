package ast_test

import (
	"testing"

	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
)

func TestInspectVisitsEverything(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	counts := map[string]int{}
	ast.Inspect(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Routine:
			counts["routine"]++
		case *ast.AssignStmt:
			counts["assign"]++
		case *ast.CallStmt:
			counts["callstmt"]++
		case *ast.CallExpr:
			counts["callexpr"]++
		case *ast.ForStmt:
			counts["for"]++
		case *ast.Ident:
			counts["ident"]++
		}
		return true
	})
	if counts["routine"] != 13 {
		t.Errorf("routines = %d, want 13", counts["routine"])
	}
	if counts["for"] != 1 {
		t.Errorf("for loops = %d, want 1", counts["for"])
	}
	if counts["callexpr"] != 2 { // decrement(y), increment(y)
		t.Errorf("call exprs = %d, want 2", counts["callexpr"])
	}
	if counts["ident"] == 0 || counts["assign"] == 0 {
		t.Error("idents or assigns not visited")
	}
}

func TestInspectPruning(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	sawInner := false
	ast.Inspect(prog, func(n ast.Node) bool {
		if r, ok := n.(*ast.Routine); ok {
			return r.Name != "sqrtest" // prune sqrtest's subtree
		}
		if cs, ok := n.(*ast.CallStmt); ok && cs.Name == "arrsum" {
			sawInner = true
		}
		return true
	})
	if sawInner {
		t.Error("pruned subtree was visited")
	}
}

func TestCloneIsDeepAndMapped(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	clone, cm := ast.Clone(prog)
	if clone == prog {
		t.Fatal("clone aliases original")
	}
	// Printing both gives identical text.
	if printer.Print(prog) != printer.Print(clone) {
		t.Error("clone prints differently")
	}
	// Mutating the clone must not touch the original.
	clone.Block.Routines[0].Name = "renamed"
	if prog.Block.Routines[0].Name == "renamed" {
		t.Error("clone shares routine nodes")
	}
	// Every cloned statement maps back to an original statement of the
	// same dynamic type.
	checked := 0
	ast.Inspect(clone, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		orig, ok := cm[s]
		if !ok {
			t.Errorf("no origin for %T at %s", s, s.Pos())
			return true
		}
		if origStmt, ok := orig.(ast.Stmt); !ok || origStmt == s {
			t.Errorf("origin of %T is %T (same=%v)", s, orig, origStmt == s)
		}
		checked++
		return true
	})
	if checked == 0 {
		t.Fatal("no statements checked")
	}
}

func TestCloneStmtAndExpr(t *testing.T) {
	prog := parser.MustParse("t.pas", `program t; var x: integer; begin x := 1 + 2; end.`)
	s := prog.Block.Body.Stmts[0]
	c := ast.CloneStmt(s)
	if c == s {
		t.Error("CloneStmt aliases")
	}
	as := s.(*ast.AssignStmt)
	e := ast.CloneExpr(as.Rhs)
	if e == as.Rhs {
		t.Error("CloneExpr aliases")
	}
	if printer.PrintExpr(e) != "1 + 2" {
		t.Errorf("cloned expr prints %q", printer.PrintExpr(e))
	}
}

func TestStmtsIteration(t *testing.T) {
	prog := parser.MustParse("t.pas", `
program t;
var x: integer;
begin
  if x > 0 then x := 1 else x := 2;
end.`)
	ifStmt := prog.Block.Body.Stmts[0]
	var n int
	ast.Stmts(ifStmt, func(ast.Stmt) { n++ })
	if n != 2 {
		t.Errorf("children = %d, want 2 (then + else)", n)
	}
}

func TestRoutineKindStrings(t *testing.T) {
	if ast.ProcKind.String() != "procedure" || ast.FuncKind.String() != "function" {
		t.Error("kind strings")
	}
	if ast.Value.String() != "in" || ast.VarMode.String() != "var" || ast.Out.String() != "out" {
		t.Error("mode strings")
	}
}

func TestPositions(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	ast.Inspect(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Routine, *ast.AssignStmt, *ast.Ident, *ast.CallStmt:
			if !n.Pos().IsValid() {
				t.Errorf("%T has no position", n)
			}
		}
		return true
	})
}
