package ast

// A Visitor's Visit method is invoked for each node encountered by Walk.
// If the result visitor w is non-nil, Walk visits each child of the node
// with w, followed by a call of w.Visit(nil).
type Visitor interface {
	Visit(n Node) Visitor
}

// Walk traverses an AST in depth-first order, visiting structural nodes
// (declarations, statements, expressions and type expressions).
func Walk(v Visitor, n Node) {
	if n == nil {
		return
	}
	if v = v.Visit(n); v == nil {
		return
	}
	switch n := n.(type) {
	case *Program:
		Walk(v, n.Block)
	case *Block:
		for _, d := range n.Consts {
			Walk(v, d)
		}
		for _, d := range n.Types {
			Walk(v, d)
		}
		for _, d := range n.Vars {
			Walk(v, d)
		}
		for _, r := range n.Routines {
			Walk(v, r)
		}
		Walk(v, n.Body)
	case *ConstDecl:
		Walk(v, n.Value)
	case *TypeDecl:
		Walk(v, n.Type)
	case *VarDecl:
		Walk(v, n.Type)
	case *Routine:
		for _, p := range n.Params {
			Walk(v, p)
		}
		if n.Result != nil {
			Walk(v, n.Result)
		}
		Walk(v, n.Block)
	case *Param:
		Walk(v, n.Type)
	case *ArrayType:
		Walk(v, n.Lo)
		Walk(v, n.Hi)
		Walk(v, n.Elem)
	case *RecordType:
		for _, f := range n.Fields {
			Walk(v, f.Type)
		}
	case *CompoundStmt:
		for _, s := range n.Stmts {
			Walk(v, s)
		}
	case *AssignStmt:
		Walk(v, n.Lhs)
		Walk(v, n.Rhs)
	case *CallStmt:
		for _, a := range n.Args {
			Walk(v, a)
		}
	case *IfStmt:
		Walk(v, n.Cond)
		Walk(v, n.Then)
		if n.Else != nil {
			Walk(v, n.Else)
		}
	case *WhileStmt:
		Walk(v, n.Cond)
		Walk(v, n.Body)
	case *RepeatStmt:
		for _, s := range n.Stmts {
			Walk(v, s)
		}
		Walk(v, n.Cond)
	case *ForStmt:
		Walk(v, n.Var)
		Walk(v, n.From)
		Walk(v, n.Limit)
		Walk(v, n.Body)
	case *CaseStmt:
		Walk(v, n.Expr)
		for _, arm := range n.Arms {
			for _, c := range arm.Consts {
				Walk(v, c)
			}
			Walk(v, arm.Body)
		}
		if n.Else != nil {
			Walk(v, n.Else)
		}
	case *LabeledStmt:
		Walk(v, n.Stmt)
	case *BinaryExpr:
		Walk(v, n.X)
		Walk(v, n.Y)
	case *UnaryExpr:
		Walk(v, n.X)
	case *IndexExpr:
		Walk(v, n.X)
		for _, i := range n.Indices {
			Walk(v, i)
		}
	case *FieldExpr:
		Walk(v, n.X)
	case *CallExpr:
		for _, a := range n.Args {
			Walk(v, a)
		}
	case *SetLit:
		for _, e := range n.Elems {
			Walk(v, e)
		}
	case *NamedType, *Ident, *IntLit, *RealLit, *StringLit,
		*GotoStmt, *EmptyStmt, *LabelDecl, *RecordField, *CaseArm:
		// leaves
	}
	v.Visit(nil)
}

type inspector func(Node) bool

func (f inspector) Visit(n Node) Visitor {
	if f(n) {
		return f
	}
	return nil
}

// Inspect traverses the AST, calling f for each node. If f returns false
// for a node, the node's children are skipped.
func Inspect(n Node, f func(Node) bool) {
	Walk(inspector(f), n)
}

// Stmts iterates over the immediate child statements of s, calling f for
// each. It is the statement-level analogue of Inspect's first layer and
// is used by control-flow construction.
func Stmts(s Stmt, f func(Stmt)) {
	switch s := s.(type) {
	case *CompoundStmt:
		for _, c := range s.Stmts {
			f(c)
		}
	case *IfStmt:
		f(s.Then)
		if s.Else != nil {
			f(s.Else)
		}
	case *WhileStmt:
		f(s.Body)
	case *RepeatStmt:
		for _, c := range s.Stmts {
			f(c)
		}
	case *ForStmt:
		f(s.Body)
	case *CaseStmt:
		for _, arm := range s.Arms {
			f(arm.Body)
		}
		if s.Else != nil {
			f(s.Else)
		}
	case *LabeledStmt:
		f(s.Stmt)
	}
}
