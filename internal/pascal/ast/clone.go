package ast

// CloneMap records, for every node of a cloned tree, the original node it
// was copied from. It is the basis of the transformer's construct map
// (paper Section 5.1): the debugger presents original constructs to the
// user while operating on the transformed tree.
type CloneMap map[Node]Node

// Clone deep-copies a program and returns the copy together with a
// new→old node map.
func Clone(p *Program) (*Program, CloneMap) {
	c := &cloner{m: make(CloneMap)}
	q := c.program(p)
	return q, c.m
}

// CloneStmt deep-copies a single statement subtree.
func CloneStmt(s Stmt) Stmt {
	c := &cloner{m: make(CloneMap)}
	return c.stmt(s)
}

// CloneExpr deep-copies a single expression subtree.
func CloneExpr(e Expr) Expr {
	c := &cloner{m: make(CloneMap)}
	return c.expr(e)
}

// CloneTypeExpr deep-copies a single type denotation.
func CloneTypeExpr(t TypeExpr) TypeExpr {
	c := &cloner{m: make(CloneMap)}
	return c.typeExpr(t)
}

type cloner struct {
	m CloneMap
}

func (c *cloner) record(nw, old Node) {
	c.m[nw] = old
}

func (c *cloner) program(p *Program) *Program {
	if p == nil {
		return nil
	}
	q := &Program{ProgPos: p.ProgPos, Name: p.Name, Block: c.block(p.Block)}
	c.record(q, p)
	return q
}

func (c *cloner) block(b *Block) *Block {
	if b == nil {
		return nil
	}
	nb := &Block{BlockPos: b.BlockPos}
	for _, l := range b.Labels {
		nl := &LabelDecl{DeclPos: l.DeclPos, Name: l.Name}
		c.record(nl, l)
		nb.Labels = append(nb.Labels, nl)
	}
	for _, d := range b.Consts {
		nd := &ConstDecl{DeclPos: d.DeclPos, Name: d.Name, Value: c.expr(d.Value)}
		c.record(nd, d)
		nb.Consts = append(nb.Consts, nd)
	}
	for _, d := range b.Types {
		nd := &TypeDecl{DeclPos: d.DeclPos, Name: d.Name, Type: c.typeExpr(d.Type)}
		c.record(nd, d)
		nb.Types = append(nb.Types, nd)
	}
	for _, d := range b.Vars {
		nd := &VarDecl{DeclPos: d.DeclPos, Names: append([]string(nil), d.Names...), Type: c.typeExpr(d.Type)}
		c.record(nd, d)
		nb.Vars = append(nb.Vars, nd)
	}
	for _, r := range b.Routines {
		nb.Routines = append(nb.Routines, c.routine(r))
	}
	nb.Body = c.stmt(b.Body).(*CompoundStmt)
	c.record(nb, b)
	return nb
}

func (c *cloner) routine(r *Routine) *Routine {
	nr := &Routine{
		DeclPos:   r.DeclPos,
		Kind:      r.Kind,
		Name:      r.Name,
		Result:    c.typeExpr(r.Result),
		Block:     c.block(r.Block),
		Synthetic: r.Synthetic,
	}
	for _, p := range r.Params {
		np := &Param{DeclPos: p.DeclPos, Mode: p.Mode, Names: append([]string(nil), p.Names...), Type: c.typeExpr(p.Type)}
		c.record(np, p)
		nr.Params = append(nr.Params, np)
	}
	c.record(nr, r)
	return nr
}

func (c *cloner) typeExpr(t TypeExpr) TypeExpr {
	switch t := t.(type) {
	case nil:
		return nil
	case *NamedType:
		nt := &NamedType{NamePos: t.NamePos, Name: t.Name}
		c.record(nt, t)
		return nt
	case *ArrayType:
		nt := &ArrayType{ArrayPos: t.ArrayPos, Lo: c.expr(t.Lo), Hi: c.expr(t.Hi), Elem: c.typeExpr(t.Elem)}
		c.record(nt, t)
		return nt
	case *RecordType:
		nt := &RecordType{RecordPos: t.RecordPos}
		for _, f := range t.Fields {
			nf := &RecordField{FieldPos: f.FieldPos, Names: append([]string(nil), f.Names...), Type: c.typeExpr(f.Type)}
			c.record(nf, f)
			nt.Fields = append(nt.Fields, nf)
		}
		c.record(nt, t)
		return nt
	}
	panic("ast.Clone: unknown type expression")
}

func (c *cloner) stmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *CompoundStmt:
		ns := &CompoundStmt{BeginPos: s.BeginPos}
		for _, cs := range s.Stmts {
			ns.Stmts = append(ns.Stmts, c.stmt(cs))
		}
		c.record(ns, s)
		return ns
	case *AssignStmt:
		ns := &AssignStmt{Lhs: c.expr(s.Lhs), Rhs: c.expr(s.Rhs)}
		c.record(ns, s)
		return ns
	case *CallStmt:
		ns := &CallStmt{CallPos: s.CallPos, Name: s.Name, Args: c.exprs(s.Args)}
		c.record(ns, s)
		return ns
	case *IfStmt:
		ns := &IfStmt{IfPos: s.IfPos, Cond: c.expr(s.Cond), Then: c.stmt(s.Then), Else: c.stmt(s.Else)}
		c.record(ns, s)
		return ns
	case *WhileStmt:
		ns := &WhileStmt{WhilePos: s.WhilePos, Cond: c.expr(s.Cond), Body: c.stmt(s.Body)}
		c.record(ns, s)
		return ns
	case *RepeatStmt:
		ns := &RepeatStmt{RepeatPos: s.RepeatPos, Cond: c.expr(s.Cond)}
		for _, cs := range s.Stmts {
			ns.Stmts = append(ns.Stmts, c.stmt(cs))
		}
		c.record(ns, s)
		return ns
	case *ForStmt:
		ns := &ForStmt{ForPos: s.ForPos, Var: c.expr(s.Var).(*Ident), From: c.expr(s.From), Limit: c.expr(s.Limit), Down: s.Down, Body: c.stmt(s.Body)}
		c.record(ns, s)
		return ns
	case *CaseStmt:
		ns := &CaseStmt{CasePos: s.CasePos, Expr: c.expr(s.Expr), Else: c.stmt(s.Else)}
		for _, arm := range s.Arms {
			na := &CaseArm{ArmPos: arm.ArmPos, Consts: c.exprs(arm.Consts), Body: c.stmt(arm.Body)}
			c.record(na, arm)
			ns.Arms = append(ns.Arms, na)
		}
		c.record(ns, s)
		return ns
	case *GotoStmt:
		ns := &GotoStmt{GotoPos: s.GotoPos, Label: s.Label}
		c.record(ns, s)
		return ns
	case *LabeledStmt:
		ns := &LabeledStmt{LabelPos: s.LabelPos, Label: s.Label, Stmt: c.stmt(s.Stmt)}
		c.record(ns, s)
		return ns
	case *EmptyStmt:
		ns := &EmptyStmt{SemiPos: s.SemiPos}
		c.record(ns, s)
		return ns
	}
	panic("ast.Clone: unknown statement")
}

func (c *cloner) exprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = c.expr(e)
	}
	return out
}

func (c *cloner) expr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Ident:
		ne := &Ident{NamePos: e.NamePos, Name: e.Name}
		c.record(ne, e)
		return ne
	case *IntLit:
		ne := &IntLit{LitPos: e.LitPos, Value: e.Value}
		c.record(ne, e)
		return ne
	case *RealLit:
		ne := &RealLit{LitPos: e.LitPos, Value: e.Value, Text: e.Text}
		c.record(ne, e)
		return ne
	case *StringLit:
		ne := &StringLit{LitPos: e.LitPos, Value: e.Value}
		c.record(ne, e)
		return ne
	case *BinaryExpr:
		ne := &BinaryExpr{Op: e.Op, X: c.expr(e.X), Y: c.expr(e.Y)}
		c.record(ne, e)
		return ne
	case *UnaryExpr:
		ne := &UnaryExpr{OpPos: e.OpPos, Op: e.Op, X: c.expr(e.X)}
		c.record(ne, e)
		return ne
	case *IndexExpr:
		ne := &IndexExpr{X: c.expr(e.X), Indices: c.exprs(e.Indices)}
		c.record(ne, e)
		return ne
	case *FieldExpr:
		ne := &FieldExpr{X: c.expr(e.X), Field: e.Field}
		c.record(ne, e)
		return ne
	case *CallExpr:
		ne := &CallExpr{CallPos: e.CallPos, Name: e.Name, Args: c.exprs(e.Args)}
		c.record(ne, e)
		return ne
	case *SetLit:
		ne := &SetLit{LitPos: e.LitPos, Elems: c.exprs(e.Elems)}
		c.record(ne, e)
		return ne
	}
	panic("ast.Clone: unknown expression")
}
