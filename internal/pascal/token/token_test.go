package token_test

import (
	"testing"

	"gadt/internal/pascal/token"
)

func TestLookupKeywords(t *testing.T) {
	cases := map[string]token.Kind{
		"begin": token.Begin, "end": token.End, "while": token.While,
		"procedure": token.Procedure, "function": token.Function,
		"goto": token.Goto, "label": token.Label, "div": token.Div,
		"notakeyword": token.Ident, "x": token.Ident,
	}
	for s, want := range cases {
		if got := token.Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !token.Ident.IsLiteral() || !token.IntLit.IsLiteral() || token.Plus.IsLiteral() {
		t.Error("IsLiteral misclassifies")
	}
	if !token.Plus.IsOperator() || !token.Assign.IsOperator() || token.Begin.IsOperator() {
		t.Error("IsOperator misclassifies")
	}
	if !token.Begin.IsKeyword() || !token.Div.IsKeyword() || token.Ident.IsKeyword() {
		t.Error("IsKeyword misclassifies")
	}
}

func TestPrecedence(t *testing.T) {
	cases := map[token.Kind]int{
		token.Star: 3, token.Div: 3, token.And: 3,
		token.Plus: 2, token.Or: 2,
		token.Eq: 1, token.Less: 1,
		token.LParen: 0, token.Begin: 0,
	}
	for k, want := range cases {
		if got := k.Precedence(); got != want {
			t.Errorf("%v.Precedence() = %d, want %d", k, got, want)
		}
	}
}

func TestPosString(t *testing.T) {
	p := token.Pos{File: "f.pas", Line: 3, Col: 7}
	if p.String() != "f.pas:3:7" {
		t.Errorf("pos = %q", p)
	}
	if (token.Pos{Line: 2, Col: 1}).String() != "2:1" {
		t.Error("file-less pos format")
	}
	if (token.Pos{}).String() != "-" || (token.Pos{}).IsValid() {
		t.Error("zero pos")
	}
}

func TestPosBefore(t *testing.T) {
	a := token.Pos{Line: 1, Col: 5}
	b := token.Pos{Line: 1, Col: 9}
	c := token.Pos{Line: 2, Col: 1}
	if !a.Before(b) || !b.Before(c) || c.Before(a) || a.Before(a) {
		t.Error("Before ordering wrong")
	}
}

func TestTokenString(t *testing.T) {
	tok := token.Token{Kind: token.Ident, Lit: "foo"}
	if tok.String() != `IDENT("foo")` {
		t.Errorf("token string = %q", tok)
	}
	if (token.Token{Kind: token.Plus}).String() != "+" {
		t.Error("operator token string")
	}
	if token.Kind(9999).String() == "" {
		t.Error("unknown kind string empty")
	}
}
