// Package token defines the lexical tokens of the Pascal subset accepted
// by the GADT front end, together with source positions.
//
// The subset follows classic Pascal: case-insensitive keywords, nested
// procedures, var parameters, labels and gotos. Token spellings are kept
// in their canonical lower-case form.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The list of token kinds.
const (
	// Special tokens.
	Illegal Kind = iota
	EOF
	Comment

	literalBeg
	// Identifiers and literals.
	Ident     // arrsum
	IntLit    // 42
	RealLit   // 3.14
	StringLit // 'hello'
	literalEnd

	operatorBeg
	// Operators and delimiters.
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Eq       // =
	NotEq    // <>
	Less     // <
	LessEq   // <=
	Greater  // >
	GreatEq  // >=
	Assign   // :=
	LParen   // (
	RParen   // )
	LBracket // [
	RBracket // ]
	Comma    // ,
	Semi     // ;
	Colon    // :
	Period   // .
	DotDot   // ..
	Caret    // ^
	operatorEnd

	keywordBeg
	// Keywords.
	And
	Array
	Begin
	Case
	Const
	Div
	Do
	Downto
	Else
	End
	For
	Function
	Goto
	If
	Label
	Mod
	Not
	Of
	Or
	Procedure
	Program
	Record
	Repeat
	Then
	To
	Type
	Until
	Var
	While
	keywordEnd
)

var names = map[Kind]string{
	Illegal:   "ILLEGAL",
	EOF:       "EOF",
	Comment:   "COMMENT",
	Ident:     "IDENT",
	IntLit:    "INT",
	RealLit:   "REAL",
	StringLit: "STRING",
	Plus:      "+",
	Minus:     "-",
	Star:      "*",
	Slash:     "/",
	Eq:        "=",
	NotEq:     "<>",
	Less:      "<",
	LessEq:    "<=",
	Greater:   ">",
	GreatEq:   ">=",
	Assign:    ":=",
	LParen:    "(",
	RParen:    ")",
	LBracket:  "[",
	RBracket:  "]",
	Comma:     ",",
	Semi:      ";",
	Colon:     ":",
	Period:    ".",
	DotDot:    "..",
	Caret:     "^",
	And:       "and",
	Array:     "array",
	Begin:     "begin",
	Case:      "case",
	Const:     "const",
	Div:       "div",
	Do:        "do",
	Downto:    "downto",
	Else:      "else",
	End:       "end",
	For:       "for",
	Function:  "function",
	Goto:      "goto",
	If:        "if",
	Label:     "label",
	Mod:       "mod",
	Not:       "not",
	Of:        "of",
	Or:        "or",
	Procedure: "procedure",
	Program:   "program",
	Record:    "record",
	Repeat:    "repeat",
	Then:      "then",
	To:        "to",
	Type:      "type",
	Until:     "until",
	Var:       "var",
	While:     "while",
}

// String returns the canonical spelling of the token kind (the operator
// symbol or keyword), or an upper-case class name for variable-spelling
// kinds such as identifiers.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsLiteral reports whether the kind is an identifier or literal.
func (k Kind) IsLiteral() bool { return literalBeg < k && k < literalEnd }

// IsOperator reports whether the kind is an operator or delimiter.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

var keywords = func() map[string]Kind {
	m := make(map[string]Kind, int(keywordEnd-keywordBeg))
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps a lower-cased identifier spelling to its keyword kind, or
// returns Ident if the spelling is not reserved.
func Lookup(lower string) Kind {
	if k, ok := keywords[lower]; ok {
		return k
	}
	return Ident
}

// Pos is a source position: 1-based line and column plus the file name.
// The zero Pos is "unknown".
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries real line information.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Before reports whether p occurs before q in the same file.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Token is a single lexical token with its position and spelling.
// Lit holds the original spelling for identifiers and literals; for string
// literals it is the decoded value (quotes removed, ” unescaped).
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind.IsLiteral() {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

// Precedence returns the binary operator precedence for expression
// parsing, following Pascal: multiplying operators bind tightest, then
// adding operators, then relational operators. Returns 0 for non-operators.
func (k Kind) Precedence() int {
	switch k {
	case Star, Slash, Div, Mod, And:
		return 3
	case Plus, Minus, Or:
		return 2
	case Eq, NotEq, Less, LessEq, Greater, GreatEq:
		return 1
	}
	return 0
}
