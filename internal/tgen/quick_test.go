package tgen_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"gadt/internal/assertion"
	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/tgen"
)

// TestQuickGeneratedSpecInvariants builds random chain-shaped
// specifications and checks the frame-generation invariants:
//   - every frame has exactly one choice per category;
//   - every choice's selector holds under the properties established by
//     the preceding choices (evaluated in category order);
//   - SINGLE choices appear in at most one frame;
//   - frame codes are unique.
func TestQuickGeneratedSpecInvariants(t *testing.T) {
	prop := func(nCats, nChoices uint8, gate []bool) bool {
		cats := int(nCats%3) + 1
		choices := int(nChoices%3) + 1
		var b strings.Builder
		b.WriteString("test u;\n")
		gi := 0
		nextGate := func() bool {
			if gi < len(gate) {
				gi++
				return gate[gi-1]
			}
			return false
		}
		for c := 0; c < cats; c++ {
			fmt.Fprintf(&b, "category c%d;\n", c)
			for ch := 0; ch < choices; ch++ {
				fmt.Fprintf(&b, "  ch%d_%d:", c, ch)
				if c > 0 && nextGate() {
					fmt.Fprintf(&b, " if p%d_0", c-1)
				}
				if ch == 0 {
					fmt.Fprintf(&b, " property p%d_0", c)
				}
				if ch == choices-1 && choices > 1 && nextGate() {
					b.WriteString(" property SINGLE")
				}
				b.WriteString(";\n")
			}
		}
		spec, err := tgen.ParseSpec(b.String())
		if err != nil {
			t.Logf("spec parse error: %v\n%s", err, b.String())
			return false
		}
		frames := spec.Generate()
		seenCodes := map[string]bool{}
		singleCount := map[string]int{}
		maxFrames := 1
		for _, cat := range spec.Categories {
			maxFrames *= len(cat.Choices)
		}
		if len(frames) > maxFrames {
			t.Logf("%d frames exceed the %d-combination bound", len(frames), maxFrames)
			return false
		}
		for _, f := range frames {
			if len(f.Choices) != cats {
				return false
			}
			if seenCodes[f.Code()] {
				t.Logf("duplicate frame %s", f.Code())
				return false
			}
			seenCodes[f.Code()] = true
			props := map[string]bool{}
			for _, ch := range f.Choices {
				if !selHolds(spec, ch.Selector, props) {
					t.Logf("frame %s violates selector of %s", f.Code(), ch.Name)
					return false
				}
				for _, p := range ch.Properties {
					props[p] = true
				}
				if ch.Single {
					singleCount[ch.Name]++
				}
			}
		}
		for name, n := range singleCount {
			if n > 1 {
				t.Logf("SINGLE choice %s in %d frames", name, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// selHolds evaluates a selector under a property environment (every
// property name known to the spec defaults to false).
func selHolds(spec *tgen.Spec, sel ast.Expr, props map[string]bool) bool {
	if sel == nil {
		return true
	}
	env := make(assertion.Env)
	for _, c := range spec.Categories {
		for _, cc := range c.Choices {
			for _, p := range cc.Properties {
				env[p] = interp.BoolV(props[p])
			}
		}
	}
	v, err := assertion.Eval(sel, env)
	if err != nil {
		return false
	}
	b, _ := v.AsBool()
	return b
}

func TestSearchGeneratorFindsFrames(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.ArrsumProgram)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	spec := tgen.MustParseSpec(paper.ArrsumSpec)
	gen := tgen.SearchGenerator(info, spec, 5000)
	target := info.LookupRoutine("arrsum")
	found := 0
	for _, f := range spec.Generate() {
		args, ok := gen(f)
		if !ok {
			continue
		}
		found++
		bindings := make([]interp.Binding, len(args))
		for i, p := range target.Params {
			bindings[i] = interp.Binding{Name: p.Name, Mode: p.Mode, Value: args[i]}
		}
		got, err := spec.Classify(bindings, nil)
		if err != nil || got.Code() != f.Code() {
			t.Errorf("frame %s: search result classifies as %v (err %v)", f.Code(), got, err)
		}
	}
	// 7 of the 8 frames are satisfiable (zero/positive/small is not: an
	// empty array matches neither positive nor negative).
	if found != 7 {
		t.Errorf("search found inputs for %d frames, want 7", found)
	}
}

func TestSearchGeneratorBudgetExhaustion(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.ArrsumProgram)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	spec := tgen.MustParseSpec(paper.ArrsumSpec)
	gen := tgen.SearchGenerator(info, spec, 1) // one candidate only
	satisfied := 0
	for _, f := range spec.Generate() {
		if _, ok := gen(f); ok {
			satisfied++
		}
	}
	if satisfied > 1 {
		t.Errorf("budget 1 satisfied %d frames", satisfied)
	}
}

func TestSearchGeneratorUnknownUnit(t *testing.T) {
	prog := parser.MustParse("t.pas", `program t; begin end.`)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	spec := tgen.MustParseSpec(paper.ArrsumSpec) // arrsum missing here
	gen := tgen.SearchGenerator(info, spec, 10)
	if _, ok := gen(spec.Generate()[0]); ok {
		t.Error("search succeeded without the unit")
	}
}
