package tgen_test

import (
	"path/filepath"
	"strings"
	"testing"

	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/paper"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/tgen"
)

func arrsumSpec(t *testing.T) *tgen.Spec {
	t.Helper()
	spec, err := tgen.ParseSpec(paper.ArrsumSpec)
	if err != nil {
		t.Fatalf("parse spec: %v", err)
	}
	return spec
}

func TestParseArrsumSpec(t *testing.T) {
	spec := arrsumSpec(t)
	if spec.Unit != "arrsum" {
		t.Errorf("unit = %q", spec.Unit)
	}
	if len(spec.Categories) != 3 {
		t.Fatalf("categories = %d, want 3", len(spec.Categories))
	}
	names := []string{"size_of_array", "type_of_elements", "deviation"}
	for i, want := range names {
		if spec.Categories[i].Name != want {
			t.Errorf("category %d = %s, want %s", i, spec.Categories[i].Name, want)
		}
	}
	size := spec.Categories[0]
	if len(size.Choices) != 4 {
		t.Fatalf("size choices = %d, want 4", len(size.Choices))
	}
	if !size.Choices[0].Single || !size.Choices[1].Single {
		t.Error("zero/one must be SINGLE")
	}
	if size.Choices[3].Single || len(size.Choices[3].Properties) != 1 || size.Choices[3].Properties[0] != "more" {
		t.Errorf("more choice = %+v", size.Choices[3])
	}
	if len(spec.Scripts) != 2 || len(spec.Results) != 1 {
		t.Errorf("scripts = %d results = %d", len(spec.Scripts), len(spec.Results))
	}
}

func TestSpecParseErrors(t *testing.T) {
	cases := []string{
		"",
		"category x;",                         // missing test header
		"test t;",                             // no categories
		"test t; category c;",                 // category with no choices
		"test t; category c; a: if ;",         // empty selector
		"test t; category c; a: match ;",      // empty match
		"test t; category c; a: property ;",   // missing property name
		"test t; category c; a: bogus thing;", // junk in choice
	}
	for _, src := range cases {
		if _, err := tgen.ParseSpec(src); err == nil {
			t.Errorf("ParseSpec(%q): expected error", src)
		}
	}
}

// TestFigure1Frames reproduces the paper's Figure 1 discussion:
// "script_1 contains two frames: (more, mixed, large) and
// (more, mixed, average)", and SINGLE choices produce one frame each.
func TestFigure1Frames(t *testing.T) {
	spec := arrsumSpec(t)
	frames := spec.Generate()
	if len(frames) != 8 {
		for _, f := range frames {
			t.Logf("frame %s scripts=%v", f, f.Scripts)
		}
		t.Fatalf("frames = %d, want 8", len(frames))
	}
	byScript := tgen.FramesByScript(frames)
	s1 := byScript["script_1"]
	if len(s1) != 2 {
		t.Fatalf("script_1 has %d frames, want 2: %v", len(s1), s1)
	}
	var codes []string
	for _, f := range s1 {
		codes = append(codes, f.Code())
	}
	want := map[string]bool{
		"arrsum:more/mixed/average": true,
		"arrsum:more/mixed/large":   true,
	}
	for _, c := range codes {
		if !want[c] {
			t.Errorf("unexpected script_1 frame %s", c)
		}
	}
	// SINGLE choices appear in exactly one frame each.
	count := map[string]int{}
	for _, f := range frames {
		count[f.Choices[0].Name]++
	}
	if count["zero"] != 1 || count["one"] != 1 {
		t.Errorf("SINGLE frame counts: zero=%d one=%d, want 1 each", count["zero"], count["one"])
	}
	// Result category assignment.
	for _, f := range frames {
		isMixed := f.Props["mixed"]
		hasResult := len(f.Results) > 0
		if isMixed != hasResult {
			t.Errorf("frame %s: mixed=%v but results=%v", f, isMixed, f.Results)
		}
	}
}

func TestSelectorGating(t *testing.T) {
	spec := arrsumSpec(t)
	for _, f := range spec.Generate() {
		size, typ, dev := f.Choices[0].Name, f.Choices[1].Name, f.Choices[2].Name
		if typ == "mixed" && size != "more" {
			t.Errorf("frame %s: mixed requires MORE", f)
		}
		if (dev == "large" || dev == "average") && typ != "mixed" {
			t.Errorf("frame %s: %s requires MIXED", f, dev)
		}
		if dev == "small" && typ == "mixed" {
			t.Errorf("frame %s: small excluded under MIXED", f)
		}
	}
}

func mkArray(vals ...int64) *interp.ArrayVal {
	a := &interp.ArrayVal{Lo: 1, Hi: 100, Elems: make([]interp.Value, 100)}
	for i := range a.Elems {
		a.Elems[i] = interp.IntV(0)
	}
	for i, v := range vals {
		a.Elems[i] = interp.IntV(v)
	}
	return a
}

func ins(n int64, vals ...int64) []interp.Binding {
	return []interp.Binding{
		{Name: "a", Value: interp.ArrV(mkArray(vals...))},
		{Name: "n", Value: interp.IntV(n)},
		{Name: "b", Value: interp.IntV(0)},
	}
}

func TestClassify(t *testing.T) {
	spec := arrsumSpec(t)
	cases := []struct {
		name string
		ins  []interp.Binding
		want string
	}{
		{"zero", ins(0), "arrsum:zero/"},
		{"one", ins(1, 7), "arrsum:one/positive/small"},
		{"twoPos", ins(2, 1, 2), "arrsum:two/positive/small"},
		{"twoNeg", ins(2, -1, -2), "arrsum:two/negative/small"},
		{"moreMixedLarge", ins(3, -50, 60, 1), "arrsum:more/mixed/large"},
		{"moreMixedAverage", ins(3, -10, 30, 2), "arrsum:more/mixed/average"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := spec.Classify(tc.ins, nil)
			if err != nil {
				if tc.name == "zero" {
					// n=0: type_of_elements has no matching choice
					// (poscount=negcount=0) — classification fails and
					// the debugger falls back to the user. Accept.
					return
				}
				t.Fatalf("classify: %v", err)
			}
			if !strings.HasPrefix(f.Code(), strings.TrimSuffix(tc.want, "/")) {
				t.Errorf("frame = %s, want prefix %s", f.Code(), tc.want)
			}
		})
	}
}

func TestDefaultFeatures(t *testing.T) {
	env := tgen.DefaultFeatures(ins(3, -50, 60, 1, 999)) // 999 beyond n
	if !interp.ValuesEqual(env["n"], interp.IntV(3)) {
		t.Errorf("n = %v", env["n"])
	}
	if !interp.ValuesEqual(env["poscount"], interp.IntV(2)) || !interp.ValuesEqual(env["negcount"], interp.IntV(1)) {
		t.Errorf("counts = %v/%v", env["poscount"], env["negcount"])
	}
	if !interp.ValuesEqual(env["spread"], interp.IntV(110)) {
		t.Errorf("spread = %v, want 110 (999 must be ignored beyond n)", env["spread"])
	}
	if !interp.ValuesEqual(env["total"], interp.IntV(11)) {
		t.Errorf("total = %v, want 11", env["total"])
	}
}

func arrsumGen(f *tgen.Frame) ([]interp.Value, bool) {
	var vals []int64
	var n int64
	switch f.Choices[0].Name {
	case "zero":
		n = 0
	case "one":
		n, vals = 1, []int64{5}
	case "two":
		n = 2
		if f.Choices[1].Name == "negative" {
			vals = []int64{-3, -4}
		} else {
			vals = []int64{3, 4}
		}
	case "more":
		n = 3
		switch {
		case f.Choices[1].Name == "positive":
			vals = []int64{2, 3, 4}
		case f.Choices[1].Name == "negative":
			vals = []int64{-2, -3, -4}
		case f.Choices[2].Name == "large":
			vals = []int64{-50, 60, 1}
		default: // average
			vals = []int64{-10, 30, 2}
		}
	}
	return []interp.Value{interp.ArrV(mkArray(vals...)), interp.IntV(n), interp.IntV(0)}, true
}

func arrsumCheck(f *tgen.Frame, ci *interp.CallInfo) bool {
	a, _ := ci.Ins[0].Value.AsArray()
	n, _ := ci.Ins[1].Value.AsInt()
	var want int64
	for i := int64(0); i < n; i++ {
		iv, _ := a.Elems[i].AsInt()
		want += iv
	}
	got, _ := ci.Outs[0].Value.AsInt()
	return got == want
}

func TestRunnerAllPass(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.ArrsumProgram)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	spec := arrsumSpec(t)
	r := &tgen.Runner{Info: info, Spec: spec, Gen: arrsumGen, Chk: arrsumCheck}
	db, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	pass, total := db.PassCount()
	if total != 8 || pass != 8 {
		t.Errorf("pass/total = %d/%d, want 8/8", pass, total)
	}
}

func TestReportDBRoundTrip(t *testing.T) {
	db := tgen.NewReportDB("arrsum")
	db.Add(&tgen.Report{Frame: "arrsum:two/positive/small", Pass: true, Scripts: []string{"script_2"}})
	db.Add(&tgen.Report{Frame: "arrsum:more/mixed/large", Pass: false, Note: "wrong sum"})
	path := filepath.Join(t.TempDir(), "reports.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := tgen.LoadReportDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Unit != "arrsum" || len(loaded.Reports) != 2 {
		t.Fatalf("loaded = %+v", loaded)
	}
	if r := loaded.Lookup("arrsum:more/mixed/large"); r == nil || r.Pass || r.Note != "wrong sum" {
		t.Errorf("report = %+v", r)
	}
	if _, err := tgen.LoadReportDB(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected error for missing file")
	}
}

// TestLookupIntegration is the paper's Section 5.3.2 path: the arrsum
// call in the sqrtest trace classifies into a tested frame with a
// passing report, so the debugger skips the query.
func TestLookupIntegration(t *testing.T) {
	// Build the report DB from the (correct) arrsum.
	aprog := parser.MustParse("a.pas", paper.ArrsumProgram)
	ainfo, err := sem.Analyze(aprog)
	if err != nil {
		t.Fatal(err)
	}
	spec := arrsumSpec(t)
	runner := &tgen.Runner{Info: ainfo, Spec: spec, Gen: arrsumGen, Chk: arrsumCheck}
	db, err := runner.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	lookup := &tgen.Lookup{Spec: spec, DB: db}

	// Trace sqrtest and judge its arrsum node.
	sprog := parser.MustParse("s.pas", paper.Sqrtest)
	sinfo, err := sem.Analyze(sprog)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(sinfo, "")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var arrsumNode, decNode *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		switch n.Unit.Name {
		case "arrsum":
			arrsumNode = n
		case "decrement":
			decNode = n
		}
		return true
	})
	if v := lookup.Judge(arrsumNode); v != debugger.Correct {
		t.Errorf("arrsum judged %v, want Correct (frame two/positive/small passed)", v)
	}
	if v := lookup.Judge(decNode); v != debugger.DontKnow {
		t.Errorf("decrement judged %v, want DontKnow (different unit)", v)
	}
	if lookup.Hits != 1 {
		t.Errorf("hits = %d", lookup.Hits)
	}
}

func TestFailingReportYieldsIncorrect(t *testing.T) {
	spec := arrsumSpec(t)
	db := tgen.NewReportDB("arrsum")
	db.Add(&tgen.Report{Frame: "arrsum:two/positive/small", Pass: false})
	lookup := &tgen.Lookup{Spec: spec, DB: db}

	sprog := parser.MustParse("s.pas", paper.Sqrtest)
	sinfo, err := sem.Analyze(sprog)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(sinfo, "")
	var arrsumNode *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		if n.Unit.Name == "arrsum" {
			arrsumNode = n
		}
		return true
	})
	if v := lookup.Judge(arrsumNode); v != debugger.Incorrect {
		t.Errorf("judged %v, want Incorrect for failing frame report", v)
	}
}

func TestMultiLookup(t *testing.T) {
	spec := arrsumSpec(t)
	db := tgen.NewReportDB("arrsum")
	db.Add(&tgen.Report{Frame: "arrsum:two/positive/small", Pass: true})
	m := tgen.MultiLookup{&tgen.Lookup{Spec: spec, DB: db}}

	sprog := parser.MustParse("s.pas", paper.Sqrtest)
	sinfo, _ := sem.Analyze(sprog)
	res := exectree.Trace(sinfo, "")
	var arrsumNode *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		if n.Unit.Name == "arrsum" {
			arrsumNode = n
		}
		return true
	})
	if v := m.Judge(arrsumNode); v != debugger.Correct {
		t.Errorf("multi judge = %v", v)
	}
}

// TestMenuLookup: classification fails (empty array matches no
// type_of_elements choice), so the menu chooser supplies the frame.
func TestMenuLookup(t *testing.T) {
	spec := arrsumSpec(t)
	db := tgen.NewReportDB("arrsum")
	db.Add(&tgen.Report{Frame: "arrsum:zero/positive/small", Pass: true})

	chooser := tgen.ChooserFunc(func(unit string, cat *tgen.Category, eligible []*tgen.Choice, ins []interp.Binding) *tgen.Choice {
		// A scripted "user": pick zero/positive/small.
		want := map[string]string{
			"size_of_array":    "zero",
			"type_of_elements": "positive",
			"deviation":        "small",
		}[cat.Name]
		for _, ch := range eligible {
			if ch.Name == want {
				return ch
			}
		}
		return nil
	})
	m := &tgen.MenuLookup{Lookup: tgen.Lookup{Spec: spec, DB: db}, Chooser: chooser}

	// A call with n = 0: auto-classification fails.
	node := nodeWithIns(t, ins(0))
	if v := m.Judge(node); v != debugger.Correct {
		t.Fatalf("menu judge = %v, want Correct", v)
	}
	if m.MenuInteractions != 3 {
		t.Errorf("menu interactions = %d, want 3 (one per category)", m.MenuInteractions)
	}
	// A classifiable call must not hit the menu.
	m.MenuInteractions = 0
	db.Add(&tgen.Report{Frame: "arrsum:two/positive/small", Pass: true})
	if v := m.Judge(nodeWithIns(t, ins(2, 1, 2))); v != debugger.Correct {
		t.Error("classifiable call not answered")
	}
	if m.MenuInteractions != 0 {
		t.Errorf("menu used despite automatic classification")
	}
}

// TestMenuLookupDeclines: a chooser that declines leaves the verdict
// unknown.
func TestMenuLookupDeclines(t *testing.T) {
	spec := arrsumSpec(t)
	db := tgen.NewReportDB("arrsum")
	m := &tgen.MenuLookup{
		Lookup:  tgen.Lookup{Spec: spec, DB: db},
		Chooser: tgen.ChooserFunc(func(string, *tgen.Category, []*tgen.Choice, []interp.Binding) *tgen.Choice { return nil }),
	}
	if v := m.Judge(nodeWithIns(t, ins(0))); v != debugger.DontKnow {
		t.Errorf("declined menu = %v, want DontKnow", v)
	}
}

// nodeWithIns fabricates an execution-tree node for the arrsum unit with
// the given input bindings, by tracing the arrsum program and patching
// the bindings (simplest way to get a well-formed *exectree.Node).
func nodeWithIns(t *testing.T, bindings []interp.Binding) *exectree.Node {
	t.Helper()
	prog := parser.MustParse("t.pas", paper.ArrsumProgram)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(info, "0 ")
	var node *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		if n.Unit.Name == "arrsum" {
			node = n
		}
		return true
	})
	if node == nil {
		t.Fatal("arrsum not traced")
	}
	node.Ins = bindings
	return node
}

func TestRunnerDetectsBuggyUnit(t *testing.T) {
	// arrsum with an off-by-one loop bound fails the "more" frames.
	buggy := `
program arrtest;
type
  intarray = array [1 .. 100] of integer;
var
  a: intarray;
  n, b: integer;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n - 1 do (* bug: misses the last element *)
    b := b + a[i];
end;

begin
  read(n);
  arrsum(a, n, b);
  writeln(b);
end.`
	prog := parser.MustParse("t.pas", buggy)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	spec := arrsumSpec(t)
	runner := &tgen.Runner{Info: info, Spec: spec, Gen: arrsumGen, Chk: arrsumCheck}
	db, err := runner.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	pass, total := db.PassCount()
	if total != 8 {
		t.Fatalf("total = %d", total)
	}
	// Only the zero frame sums correctly (empty sum).
	if pass != 1 {
		t.Errorf("pass = %d, want 1 (only the zero frame)", pass)
	}
}
