package tgen

import (
	"strings"
	"sync"

	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
)

// CallDB is a harvested test database: exact unit invocations observed
// to behave correctly — typically every completed call in a campaign's
// reference run — keyed by unit name and entry values. Where the
// spec-driven Lookup answers by frame classification, CallDB answers by
// literal recall: a later call with the same unit and inputs is Correct
// iff it produced the same outputs, with no extrapolation at all.
//
// It implements debugger.TestLookup and is safe for concurrent use
// (campaign workers share one database per subject).
type CallDB struct {
	mu    sync.RWMutex
	calls map[string]string // unit + rendered inputs -> rendered outputs

	hits, misses int64
}

// NewCallDB returns an empty database.
func NewCallDB() *CallDB {
	return &CallDB{calls: make(map[string]string)}
}

var _ debugger.TestLookup = (*CallDB)(nil)

// callKey renders the invocation's identity: unit name plus entry
// values in parameter order.
func callKey(n *exectree.Node) string {
	var b strings.Builder
	b.WriteString(n.Unit.Name)
	b.WriteByte('(')
	for i, in := range n.Ins {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(interp.FormatValue(in.Value))
	}
	b.WriteByte(')')
	return b.String()
}

// callOuts renders the invocation's observable behavior: exit values in
// parameter order plus the function result.
func callOuts(n *exectree.Node) string {
	var b strings.Builder
	for i, out := range n.Outs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(interp.FormatValue(out.Value))
	}
	if n.Unit.Kind == ast.FuncKind {
		b.WriteByte('=')
		b.WriteString(interp.FormatValue(n.Result))
	}
	return b.String()
}

// AddPassing records one completed invocation as intended behavior.
// Re-adding the same call is a no-op (first writer wins; the reference
// is deterministic, so duplicates agree anyway).
func (db *CallDB) AddPassing(n *exectree.Node) {
	if n == nil || n.Incomplete || n.IsRoot() {
		return
	}
	key := callKey(n)
	db.mu.Lock()
	if _, ok := db.calls[key]; !ok {
		db.calls[key] = callOuts(n)
	}
	db.mu.Unlock()
}

// HarvestTree records every completed non-root invocation of a
// known-good execution tree and returns the database for chaining.
func (db *CallDB) HarvestTree(t *exectree.Tree) *CallDB {
	if t == nil {
		return db
	}
	t.Walk(func(n *exectree.Node) bool {
		db.AddPassing(n)
		return true
	})
	return db
}

// Len reports the number of distinct harvested calls.
func (db *CallDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.calls)
}

// Stats reports lookup hits (calls answered) and misses.
func (db *CallDB) Stats() (hits, misses int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.hits, db.misses
}

// Judge implements debugger.TestLookup: Correct when the call matches a
// harvested invocation exactly, Incorrect when the inputs match but the
// outputs differ, DontKnow for never-harvested inputs.
func (db *CallDB) Judge(n *exectree.Node) debugger.Verdict {
	if n == nil || n.Incomplete || n.IsRoot() {
		return debugger.DontKnow
	}
	key := callKey(n)
	db.mu.RLock()
	want, ok := db.calls[key]
	db.mu.RUnlock()
	if !ok {
		db.mu.Lock()
		db.misses++
		db.mu.Unlock()
		return debugger.DontKnow
	}
	db.mu.Lock()
	db.hits++
	db.mu.Unlock()
	if callOuts(n) == want {
		return debugger.Correct
	}
	return debugger.Incorrect
}
