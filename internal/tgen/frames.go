package tgen

import (
	"fmt"
	"strings"

	"gadt/internal/assertion"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
)

// Frame is one generated test frame: exactly one choice from each
// category (Section 2).
type Frame struct {
	Unit    string
	Choices []*Choice // parallel to Spec.Categories
	Props   map[string]bool
	Scripts []string
	Results []string
}

// Code returns the frame's database key, e.g. "arrsum:more/mixed/large".
func (f *Frame) Code() string {
	parts := make([]string, len(f.Choices))
	for i, c := range f.Choices {
		parts[i] = c.Name
	}
	return f.Unit + ":" + strings.Join(parts, "/")
}

func (f *Frame) String() string {
	parts := make([]string, len(f.Choices))
	for i, c := range f.Choices {
		parts[i] = c.Name
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// propEnv converts a property set into an evaluation environment where
// each known property name is bound to a boolean.
func propEnv(spec *Spec, props map[string]bool) assertion.Env {
	env := make(assertion.Env)
	for _, cat := range spec.Categories {
		for _, ch := range cat.Choices {
			for _, p := range ch.Properties {
				env[p] = interp.BoolV(props[p])
			}
		}
	}
	return env
}

// selectorHolds evaluates a selector under the property set.
func selectorHolds(spec *Spec, sel ast.Expr, props map[string]bool) bool {
	if sel == nil {
		return true
	}
	v, err := assertion.Eval(sel, propEnv(spec, props))
	if err != nil {
		return false
	}
	b, _ := v.AsBool()
	return b
}

// Generate produces all test frames of the specification: the cross
// product of eligible non-SINGLE choices (selector expressions are
// evaluated over the properties established by choices of earlier
// categories), plus exactly one frame per SINGLE choice (paper: "Only
// one frame is generated for each choice associated with the SINGLE
// property"). Frames are then assigned to matching scripts and result
// categories.
func (spec *Spec) Generate() []*Frame {
	var frames []*Frame

	var rec func(i int, picked []*Choice, props map[string]bool)
	rec = func(i int, picked []*Choice, props map[string]bool) {
		if i == len(spec.Categories) {
			f := &Frame{
				Unit:    spec.Unit,
				Choices: append([]*Choice(nil), picked...),
				Props:   copyProps(props),
			}
			frames = append(frames, f)
			return
		}
		for _, ch := range spec.Categories[i].Choices {
			if ch.Single {
				continue
			}
			if !selectorHolds(spec, ch.Selector, props) {
				continue
			}
			for _, p := range ch.Properties {
				props[p] = true
			}
			rec(i+1, append(picked, ch), props)
			for _, p := range ch.Properties {
				delete(props, p)
			}
		}
	}
	rec(0, nil, map[string]bool{})

	// One frame per SINGLE choice: the SINGLE choice plus the first
	// eligible choice of every other category.
	for ci, cat := range spec.Categories {
		for _, single := range cat.Choices {
			if !single.Single {
				continue
			}
			props := map[string]bool{}
			picked := make([]*Choice, 0, len(spec.Categories))
			ok := true
			for cj, other := range spec.Categories {
				if cj == ci {
					picked = append(picked, single)
					for _, p := range single.Properties {
						props[p] = true
					}
					continue
				}
				var chosen *Choice
				for _, ch := range other.Choices {
					if ch.Single {
						continue
					}
					if selectorHolds(spec, ch.Selector, props) {
						chosen = ch
						break
					}
				}
				if chosen == nil {
					ok = false
					break
				}
				picked = append(picked, chosen)
				for _, p := range chosen.Properties {
					props[p] = true
				}
			}
			if ok {
				frames = append(frames, &Frame{
					Unit:    spec.Unit,
					Choices: picked,
					Props:   copyProps(props),
				})
			}
		}
	}

	// Script and result assignment.
	for _, f := range frames {
		for _, s := range spec.Scripts {
			if selectorHolds(spec, s.Selector, f.Props) {
				f.Scripts = append(f.Scripts, s.Name)
			}
		}
		for _, rc := range spec.Results {
			if selectorHolds(spec, rc.Selector, f.Props) {
				f.Results = append(f.Results, rc.Name)
			}
		}
	}
	return frames
}

func copyProps(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Classification (automatic test-frame selection, Section 5.3.2)

// Features derives the evaluation environment used by `match`
// expressions from a call's input bindings. The paper's "automatic test
// frame selector functions" correspond to custom Features
// implementations; DefaultFeatures covers the common case.
type Features func(ins []interp.Binding) assertion.Env

// DefaultFeatures binds every scalar input parameter by name and, for
// each integer-array parameter a, derives:
//
//	poscount / negcount / zerocount — element sign counts
//	spread                          — max - min
//	total                           — element sum
//
// considering the first n elements when an integer parameter named n
// exists, the whole array otherwise. With several array parameters the
// features describe the first one.
func DefaultFeatures(ins []interp.Binding) assertion.Env {
	env := make(assertion.Env)
	var n int64 = -1
	for _, b := range ins {
		if b.Value.IsScalar() {
			env[b.Name] = b.Value
			if b.Name == "n" {
				if iv, ok := b.Value.AsInt(); ok {
					n = iv
				}
			}
		}
	}
	for _, b := range ins {
		arr, ok := b.Value.AsArray()
		if !ok {
			continue
		}
		limit := int64(len(arr.Elems))
		if n >= 0 && n < limit {
			limit = n
		}
		var pos, neg, zero, total int64
		var min, max int64
		first := true
		for i := int64(0); i < limit; i++ {
			iv, ok := arr.Elems[i].AsInt()
			if !ok {
				continue
			}
			total += iv
			switch {
			case iv > 0:
				pos++
			case iv < 0:
				neg++
			default:
				zero++
			}
			if first || iv < min {
				min = iv
			}
			if first || iv > max {
				max = iv
			}
			first = false
		}
		spread := int64(0)
		if !first {
			spread = max - min
		}
		env["poscount"] = interp.IntV(pos)
		env["negcount"] = interp.IntV(neg)
		env["zerocount"] = interp.IntV(zero)
		env["spread"] = interp.IntV(spread)
		env["total"] = interp.IntV(total)
		break
	}
	return env
}

// Classify maps a concrete call (its input bindings) to a frame, using
// the choices' match expressions: within each category, the first choice
// whose selector holds (under properties accumulated so far) and whose
// match expression evaluates true is taken. Returns an error when some
// category has no matching choice — the debugger then falls back to
// asking the user (the paper's menu-based selection).
func (spec *Spec) Classify(ins []interp.Binding, features Features) (*Frame, error) {
	if features == nil {
		features = DefaultFeatures
	}
	env := features(ins)
	props := map[string]bool{}
	var picked []*Choice
	for _, cat := range spec.Categories {
		var chosen *Choice
		for _, ch := range cat.Choices {
			if ch.Match == nil {
				continue
			}
			if !selectorHolds(spec, ch.Selector, props) {
				continue
			}
			// The match environment includes current properties too.
			menv := make(assertion.Env, len(env))
			for k, v := range env {
				menv[k] = v
			}
			for k, v := range propEnv(spec, props) {
				menv[k] = v
			}
			v, err := assertion.Eval(ch.Match, menv)
			if err != nil {
				continue
			}
			if b, _ := v.AsBool(); b {
				chosen = ch
				break
			}
		}
		if chosen == nil {
			return nil, fmt.Errorf("tgen: no choice of category %s matches the call", cat.Name)
		}
		picked = append(picked, chosen)
		for _, p := range chosen.Properties {
			props[p] = true
		}
	}
	f := &Frame{Unit: spec.Unit, Choices: picked, Props: props}
	for _, s := range spec.Scripts {
		if selectorHolds(spec, s.Selector, f.Props) {
			f.Scripts = append(f.Scripts, s.Name)
		}
	}
	return f, nil
}
