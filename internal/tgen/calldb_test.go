package tgen_test

import (
	"testing"

	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/tgen"
)

const calldbReference = `
program calls;
var a, b, c: integer;

function inc(x: integer): integer;
begin
  inc := x + 1;
end;

procedure shift(x: integer; var r: integer);
begin
  r := x * 2;
end;

begin
  a := inc(1);
  b := inc(7);
  shift(3, c);
  writeln(a + b + c);
end.
`

// calldbMutant breaks inc but leaves shift intact, and calls inc on an
// input the reference never exercised.
const calldbMutant = `
program calls;
var a, b, c: integer;

function inc(x: integer): integer;
begin
  inc := x + 5;
end;

procedure shift(x: integer; var r: integer);
begin
  r := x * 2;
end;

begin
  a := inc(1);
  b := inc(100);
  shift(3, c);
  writeln(a + b + c);
end.
`

func calldbTrace(t *testing.T, src string) *exectree.Tree {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(info, "")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res.Tree
}

// TestCallDBJudge covers the three verdicts of exact-call recall:
// matching invocation -> Correct, same inputs with different outputs ->
// Incorrect, never-harvested inputs -> DontKnow. The root is never
// judged.
func TestCallDBJudge(t *testing.T) {
	db := tgen.NewCallDB().HarvestTree(calldbTrace(t, calldbReference))
	// inc(1), inc(7), shift(3): three distinct calls.
	if db.Len() != 3 {
		t.Fatalf("harvested %d calls, want 3", db.Len())
	}

	mutant := calldbTrace(t, calldbMutant)
	verdicts := make(map[string][]debugger.Verdict)
	mutant.Walk(func(n *exectree.Node) bool {
		if !n.IsRoot() {
			verdicts[n.Unit.Name] = append(verdicts[n.Unit.Name], db.Judge(n))
		}
		return true
	})
	// inc(1) = 6 contradicts the harvested inc(1) = 2; inc(100) is
	// unseen; shift matches exactly.
	if got := verdicts["inc"]; len(got) != 2 || got[0] != debugger.Incorrect || got[1] != debugger.DontKnow {
		t.Errorf("inc verdicts = %v, want [Incorrect DontKnow]", got)
	}
	if got := verdicts["shift"]; len(got) != 1 || got[0] != debugger.Correct {
		t.Errorf("shift verdicts = %v, want [Correct]", got)
	}
	if v := db.Judge(mutant.Root); v != debugger.DontKnow {
		t.Errorf("root judged %v, want DontKnow", v)
	}
	hits, misses := db.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

// TestCallDBRecallOnReference: judging the harvested tree against its
// own database must answer Correct everywhere — the campaign relies on
// this to absorb the reference-equal parts of every mutant run.
func TestCallDBRecallOnReference(t *testing.T) {
	tree := calldbTrace(t, calldbReference)
	db := tgen.NewCallDB().HarvestTree(tree)
	tree.Walk(func(n *exectree.Node) bool {
		if !n.IsRoot() {
			if v := db.Judge(n); v != debugger.Correct {
				t.Errorf("%s judged %v, want Correct", n.Unit.Name, v)
			}
		}
		return true
	})
}

// TestCallDBConcurrentJudge exercises the lock under the race detector
// the way campaign workers share one database.
func TestCallDBConcurrentJudge(t *testing.T) {
	tree := calldbTrace(t, calldbReference)
	db := tgen.NewCallDB().HarvestTree(tree)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				tree.Walk(func(n *exectree.Node) bool {
					db.Judge(n)
					return true
				})
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}
