// Package tgen reproduces T-GEN, the paper's extended category-partition
// test generator (Section 2): test specifications with categories,
// choices, properties and selector expressions; frame generation with
// SINGLE handling; test scripts and result categories; executable test
// cases run against the subject program; and a test-report database the
// debugger consults during bug localization (Section 5.3.2).
//
// Specification syntax (a transliteration of the paper's Figure 1):
//
//	test arrsum;
//
//	category size_of_array;
//	  zero:  property SINGLE  match n = 0;
//	  one:   property SINGLE  match n = 1;
//	  two:                    match n = 2;
//	  more:  property MORE    match n > 2;
//
//	category type_of_elements;
//	  mixed: if MORE property MIXED match (poscount > 0) and (negcount > 0);
//	  ...
//
//	scripts
//	  script_1: if MIXED;
//	result
//	  result_1: if MIXED;
//
// `if` selectors are Boolean expressions over property names set by
// earlier choices; `match` expressions (this reproduction's realization
// of the paper's "automatic test frame selector functions") classify a
// concrete call into the choice, evaluated over parameter values and
// derived features. All identifiers are case-insensitive.
package tgen

import (
	"fmt"
	"strings"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/lexer"
	"gadt/internal/pascal/token"
)

// Spec is a parsed test specification.
type Spec struct {
	Unit       string
	Categories []*Category
	Scripts    []*Clause
	Results    []*Clause
}

// Category is one input-property dimension.
type Category struct {
	Name    string
	Choices []*Choice
}

// Choice is one equivalence class within a category.
type Choice struct {
	Name string
	// Selector gates the choice on properties established by earlier
	// choices (nil = always eligible).
	Selector ast.Expr
	// Properties are set when the choice is taken. The special property
	// SINGLE marks the choice for single-frame generation.
	Properties []string
	Single     bool
	// Match classifies a concrete call into this choice (nil = the
	// choice cannot be selected automatically).
	Match ast.Expr

	selText, matchText string
}

// Clause is a named selector (scripts and result categories).
type Clause struct {
	Name     string
	Selector ast.Expr
	selText  string
}

// ParseSpec parses a specification.
func ParseSpec(src string) (*Spec, error) {
	p := &specParser{lex: lexer.New("spec", src)}
	p.next()
	spec, err := p.parse()
	if err != nil {
		return nil, err
	}
	if errs := p.lex.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("tgen: %s", errs[0])
	}
	return spec, nil
}

// MustParseSpec panics on error; for known-good embedded specs.
func MustParseSpec(src string) *Spec {
	s, err := ParseSpec(src)
	if err != nil {
		panic(err)
	}
	return s
}

type specParser struct {
	lex *lexer.Lexer
	tok token.Token
}

func (p *specParser) next() { p.tok = p.lex.Next() }

func (p *specParser) errf(format string, args ...any) error {
	return fmt.Errorf("tgen: %s: %s", p.tok.Pos, fmt.Sprintf(format, args...))
}

func (p *specParser) expectIdent(what string) (string, error) {
	if p.tok.Kind != token.Ident {
		return "", p.errf("expected %s, found %s", what, p.tok)
	}
	name := p.tok.Lit
	p.next()
	return name, nil
}

func (p *specParser) expect(k token.Kind) error {
	if p.tok.Kind != k {
		return p.errf("expected %q, found %s", k.String(), p.tok)
	}
	p.next()
	return nil
}

func (p *specParser) isKw(word string) bool {
	return p.tok.Kind == token.Ident && p.tok.Lit == word
}

func (p *specParser) parse() (*Spec, error) {
	if !p.isKw("test") {
		return nil, p.errf("specification must start with 'test'")
	}
	p.next()
	unit, err := p.expectIdent("unit name")
	if err != nil {
		return nil, err
	}
	if err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	spec := &Spec{Unit: unit}
	for p.tok.Kind != token.EOF {
		switch {
		case p.isKw("category"):
			p.next()
			name, err := p.expectIdent("category name")
			if err != nil {
				return nil, err
			}
			if err := p.expect(token.Semi); err != nil {
				return nil, err
			}
			cat := &Category{Name: name}
			for p.tok.Kind == token.Ident && !p.sectionStart() {
				ch, err := p.parseChoice()
				if err != nil {
					return nil, err
				}
				cat.Choices = append(cat.Choices, ch)
			}
			if len(cat.Choices) == 0 {
				return nil, p.errf("category %s has no choices", name)
			}
			spec.Categories = append(spec.Categories, cat)
		case p.isKw("scripts"):
			p.next()
			for p.tok.Kind == token.Ident && !p.sectionStart() {
				cl, err := p.parseClause()
				if err != nil {
					return nil, err
				}
				spec.Scripts = append(spec.Scripts, cl)
			}
		case p.isKw("result"), p.isKw("results"):
			p.next()
			for p.tok.Kind == token.Ident && !p.sectionStart() {
				cl, err := p.parseClause()
				if err != nil {
					return nil, err
				}
				spec.Results = append(spec.Results, cl)
			}
		default:
			return nil, p.errf("expected 'category', 'scripts' or 'result', found %s", p.tok)
		}
	}
	if len(spec.Categories) == 0 {
		return nil, fmt.Errorf("tgen: specification for %s has no categories", unit)
	}
	return spec, nil
}

func (p *specParser) sectionStart() bool {
	return p.isKw("category") || p.isKw("scripts") || p.isKw("result") || p.isKw("results")
}

func (p *specParser) parseChoice() (*Choice, error) {
	name, err := p.expectIdent("choice name")
	if err != nil {
		return nil, err
	}
	if err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	ch := &Choice{Name: name}
	for {
		switch {
		case p.tok.Kind == token.If:
			p.next()
			e, text, err := p.parseExprUntil("property", "match")
			if err != nil {
				return nil, err
			}
			ch.Selector, ch.selText = e, text
		case p.isKw("property"):
			p.next()
			for {
				prop, err := p.expectIdent("property name")
				if err != nil {
					return nil, err
				}
				if prop == "single" {
					ch.Single = true
				} else {
					ch.Properties = append(ch.Properties, prop)
				}
				if p.tok.Kind != token.Comma {
					break
				}
				p.next()
			}
		case p.isKw("match"):
			p.next()
			e, text, err := p.parseExprUntil("property")
			if err != nil {
				return nil, err
			}
			ch.Match, ch.matchText = e, text
		case p.tok.Kind == token.Semi:
			p.next()
			return ch, nil
		default:
			return nil, p.errf("unexpected %s in choice %s", p.tok, name)
		}
	}
}

func (p *specParser) parseClause() (*Clause, error) {
	name, err := p.expectIdent("name")
	if err != nil {
		return nil, err
	}
	if err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	cl := &Clause{Name: name}
	if p.tok.Kind == token.If {
		p.next()
		e, text, err := p.parseExprUntil()
		if err != nil {
			return nil, err
		}
		cl.Selector, cl.selText = e, text
	}
	if err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return cl, nil
}

// parseExprUntil parses a Pascal expression, stopping before ';' or any
// of the given contextual keywords.
func (p *specParser) parseExprUntil(stops ...string) (ast.Expr, string, error) {
	stop := func() bool {
		if p.tok.Kind == token.Semi || p.tok.Kind == token.EOF {
			return true
		}
		for _, s := range stops {
			if p.isKw(s) {
				return true
			}
		}
		return false
	}
	e, err := p.parseBinary(1, stop)
	if err != nil {
		return nil, "", err
	}
	return e, exprText(e), nil
}

func (p *specParser) parseBinary(minPrec int, stop func() bool) (ast.Expr, error) {
	x, err := p.parseUnary(stop)
	if err != nil {
		return nil, err
	}
	for !stop() {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x, nil
		}
		op := p.tok.Kind
		p.next()
		y, err := p.parseBinary(prec+1, stop)
		if err != nil {
			return nil, err
		}
		x = &ast.BinaryExpr{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *specParser) parseUnary(stop func() bool) (ast.Expr, error) {
	switch p.tok.Kind {
	case token.Not:
		pos := p.tok.Pos
		p.next()
		x, err := p.parseUnary(stop)
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{OpPos: pos, Op: token.Not, X: x}, nil
	case token.Minus, token.Plus:
		pos := p.tok.Pos
		op := p.tok.Kind
		p.next()
		x, err := p.parseUnary(stop)
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{OpPos: pos, Op: op, X: x}, nil
	case token.LParen:
		p.next()
		e, err := p.parseBinary(1, func() bool { return p.tok.Kind == token.EOF })
		if err != nil {
			return nil, err
		}
		if err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case token.IntLit:
		var v int64
		fmt.Sscanf(p.tok.Lit, "%d", &v)
		e := &ast.IntLit{LitPos: p.tok.Pos, Value: v}
		p.next()
		return e, nil
	case token.Ident:
		name := p.tok.Lit
		pos := p.tok.Pos
		p.next()
		if p.tok.Kind == token.LParen {
			ce := &ast.CallExpr{CallPos: pos, Name: name}
			p.next()
			for p.tok.Kind != token.RParen {
				arg, err := p.parseBinary(1, func() bool {
					return p.tok.Kind == token.Comma || p.tok.Kind == token.RParen || p.tok.Kind == token.EOF
				})
				if err != nil {
					return nil, err
				}
				ce.Args = append(ce.Args, arg)
				if p.tok.Kind == token.Comma {
					p.next()
				}
			}
			p.next()
			return ce, nil
		}
		return &ast.Ident{NamePos: pos, Name: name}, nil
	}
	return nil, p.errf("expected expression, found %s", p.tok)
}

// exprText renders an expression for report keys and diagnostics.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *ast.Ident:
		return e.Name
	case *ast.IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *ast.UnaryExpr:
		if e.Op == token.Not {
			return "not " + exprText(e.X)
		}
		return e.Op.String() + exprText(e.X)
	case *ast.BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", exprText(e.X), e.Op, exprText(e.Y))
	case *ast.CallExpr:
		var args []string
		for _, a := range e.Args {
			args = append(args, exprText(a))
		}
		return e.Name + "(" + strings.Join(args, ", ") + ")"
	}
	return "?"
}
