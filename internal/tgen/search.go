package tgen

import (
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/types"
)

// SearchGenerator derives concrete test inputs for each frame by
// enumerating small candidate values for the unit's input parameters and
// keeping the first candidate whose classification (via the choices'
// match expressions) lands exactly in the requested frame. budget bounds
// the number of candidates tried per frame (<= 0 means 500).
//
// This automates the paper's "extending the test specification with
// declarations and executable statements [so] the system can generate
// executable test cases": the match expressions double as input
// constraints.
func SearchGenerator(info *sem.Info, spec *Spec, budget int) CaseGenerator {
	if budget <= 0 {
		budget = 500
	}
	target := info.LookupRoutine(spec.Unit)
	return func(f *Frame) ([]interp.Value, bool) {
		if target == nil {
			return nil, false
		}
		want := f.Code()
		pools := make([][]interp.Value, len(target.Params))
		for i, p := range target.Params {
			if p.Mode != ast.Value {
				pools[i] = []interp.Value{interp.ZeroValue(p.Type)}
				continue
			}
			pools[i] = candidates(p.Type)
		}
		tried := 0
		var found []interp.Value
		var rec func(i int, picked []interp.Value) bool
		rec = func(i int, picked []interp.Value) bool {
			if tried >= budget {
				return false
			}
			if i == len(pools) {
				tried++
				ins := make([]interp.Binding, len(picked))
				for j, v := range picked {
					ins[j] = interp.Binding{Name: target.Params[j].Name, Mode: target.Params[j].Mode, Value: v}
				}
				got, err := spec.Classify(ins, nil)
				if err == nil && got.Code() == want {
					found = append([]interp.Value(nil), picked...)
					return true
				}
				return false
			}
			for _, v := range pools[i] {
				if rec(i+1, append(picked, v)) {
					return true
				}
			}
			return false
		}
		if !rec(0, nil) {
			return nil, false
		}
		return found, true
	}
}

// candidates returns the search pool for an input parameter type.
func candidates(t types.Type) []interp.Value {
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind {
		case types.Int:
			return []interp.Value{interp.IntV(0), interp.IntV(1), interp.IntV(2), interp.IntV(3), interp.IntV(5),
				interp.IntV(-1), interp.IntV(-3), interp.IntV(10), interp.IntV(100), interp.IntV(-100)}
		case types.Bool:
			return []interp.Value{interp.BoolV(false), interp.BoolV(true)}
		case types.Real:
			return []interp.Value{interp.RealV(0.0), interp.RealV(1.5), interp.RealV(-2.5)}
		case types.Str:
			return []interp.Value{interp.StrV(""), interp.StrV("x")}
		}
	case *types.Array:
		if types.IsInteger(t.Elem) {
			shapes := [][]int64{
				{},
				{5},
				{1, 2},
				{-3, -4},
				{2, 3, 4},
				{-2, -3, -4},
				{-50, 60, 1},
				{-10, 30, 2},
				{0, 0, 0},
				{1, -1, 2, -2, 3},
				{-200, 150, 7, 8},
			}
			var out []interp.Value
			for _, vals := range shapes {
				if int64(len(vals)) > t.Len() {
					continue
				}
				a := interp.NewArray(t)
				for i, v := range vals {
					a.Elems[i] = interp.IntV(v)
				}
				out = append(out, interp.ArrV(a))
			}
			return out
		}
	}
	return []interp.Value{interp.ZeroValue(t)}
}
