package tgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/sem"
)

// Report is the stored outcome of executing one test case (the paper's
// test report, accessed "by using a coded form of the test frames").
type Report struct {
	Frame   string            `json:"frame"` // coded frame, e.g. arrsum:more/mixed/large
	Pass    bool              `json:"pass"`
	Scripts []string          `json:"scripts,omitempty"`
	Inputs  map[string]string `json:"inputs,omitempty"`
	Outputs map[string]string `json:"outputs,omitempty"`
	Ran     string            `json:"ran,omitempty"` // timestamp, informational
	Note    string            `json:"note,omitempty"`
}

// ReportDB is the test-report database for one unit.
type ReportDB struct {
	Unit    string             `json:"unit"`
	Reports map[string]*Report `json:"reports"` // keyed by frame code
}

// NewReportDB returns an empty database.
func NewReportDB(unit string) *ReportDB {
	return &ReportDB{Unit: unit, Reports: make(map[string]*Report)}
}

// Add stores a report (last writer wins per frame).
func (db *ReportDB) Add(r *Report) { db.Reports[r.Frame] = r }

// Lookup finds the report for a frame code.
func (db *ReportDB) Lookup(code string) *Report { return db.Reports[code] }

// PassCount returns how many stored reports passed.
func (db *ReportDB) PassCount() (pass, total int) {
	for _, r := range db.Reports {
		total++
		if r.Pass {
			pass++
		}
	}
	return pass, total
}

// Save writes the database as JSON.
func (db *ReportDB) Save(path string) error {
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return fmt.Errorf("tgen: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadReportDB reads a JSON database.
func LoadReportDB(path string) (*ReportDB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tgen: %w", err)
	}
	var db ReportDB
	if err := json.Unmarshal(data, &db); err != nil {
		return nil, fmt.Errorf("tgen: %s: %w", path, err)
	}
	if db.Reports == nil {
		db.Reports = make(map[string]*Report)
	}
	return &db, nil
}

// ---------------------------------------------------------------------------
// Test-case generation and execution

// CaseGenerator produces concrete argument values exercising a frame
// (the paper's executable test cases, generated from the declarations
// and statements attached to the specification). Returning ok=false
// marks the frame as not executable (superfluous frame).
type CaseGenerator func(f *Frame) (args []interp.Value, ok bool)

// Checker decides whether the observed call outcome is correct. The
// usual implementation compares against a reference implementation or
// closed-form expectation.
type Checker func(f *Frame, ci *interp.CallInfo) bool

// Runner executes generated test cases for one unit of a program.
type Runner struct {
	Info *sem.Info
	Spec *Spec
	Gen  CaseGenerator
	Chk  Checker
	// MaxSteps bounds each case (default 1e6).
	MaxSteps int
	// Clock stamps reports; nil uses time.Now.
	Clock func() time.Time
}

// RunAll executes one test case per generated frame and returns the
// report database.
func (r *Runner) RunAll() (*ReportDB, error) {
	target := r.Info.LookupRoutine(r.Spec.Unit)
	if target == nil {
		return nil, fmt.Errorf("tgen: unit %s not found in program", r.Spec.Unit)
	}
	db := NewReportDB(r.Spec.Unit)
	steps := r.MaxSteps
	if steps <= 0 {
		steps = 1_000_000
	}
	for _, f := range r.Spec.Generate() {
		args, ok := r.Gen(f)
		if !ok {
			continue
		}
		rep := &Report{Frame: f.Code(), Scripts: f.Scripts, Inputs: map[string]string{}, Outputs: map[string]string{}}
		if r.Clock != nil {
			rep.Ran = r.Clock().UTC().Format(time.RFC3339)
		}
		it := interp.New(r.Info, interp.Config{MaxSteps: steps})
		ci, err := it.CallUnit(target, args)
		if err != nil {
			rep.Pass = false
			rep.Note = "runtime error: " + err.Error()
		} else {
			for _, b := range ci.Ins {
				rep.Inputs[b.Name] = interp.FormatValue(b.Value)
			}
			for _, b := range ci.Outs {
				rep.Outputs[b.Name] = interp.FormatValue(b.Value)
			}
			if !ci.Result.IsUndef() {
				rep.Outputs["result"] = interp.FormatValue(ci.Result)
			}
			rep.Pass = r.Chk(f, ci)
		}
		db.Add(rep)
	}
	return db, nil
}

// ---------------------------------------------------------------------------
// Debugger integration (Section 5.3.2)

// Lookup adapts a specification plus report database to the debugger's
// test-case lookup: a query about a unit call is answered Correct when
// the call classifies into a frame with a passing report, Incorrect when
// the frame's report failed, and DontKnow when classification fails or
// no report exists (the debugger then asks the user).
type Lookup struct {
	Spec     *Spec
	DB       *ReportDB
	Features Features
	// Stats
	Hits, Misses int
}

var _ debugger.TestLookup = (*Lookup)(nil)

// Judge implements debugger.TestLookup.
func (l *Lookup) Judge(n *exectree.Node) debugger.Verdict {
	if l.Spec == nil || l.DB == nil || n.Unit.Name != l.Spec.Unit {
		return debugger.DontKnow
	}
	f, err := l.Spec.Classify(n.Ins, l.Features)
	if err != nil {
		l.Misses++
		return debugger.DontKnow
	}
	rep := l.DB.Lookup(f.Code())
	if rep == nil {
		l.Misses++
		return debugger.DontKnow
	}
	l.Hits++
	if rep.Pass {
		return debugger.Correct
	}
	return debugger.Incorrect
}

// Chooser selects a choice per category when automatic classification
// fails — the paper's menu-based frame selection ("the user can select
// the suitable choices from a menu", Section 5.3.2). Returning nil skips
// the menu (no frame selected).
type Chooser interface {
	Choose(unit string, category *Category, eligible []*Choice, ins []interp.Binding) *Choice
}

// ChooserFunc adapts a function to the Chooser interface.
type ChooserFunc func(unit string, category *Category, eligible []*Choice, ins []interp.Binding) *Choice

// Choose implements Chooser.
func (f ChooserFunc) Choose(unit string, c *Category, el []*Choice, ins []interp.Binding) *Choice {
	return f(unit, c, el, ins)
}

// MenuLookup extends Lookup with menu-based frame selection: when the
// match expressions cannot classify a call, the Chooser is consulted
// category by category (only selector-eligible choices are offered).
// Menu selections are user interactions, counted separately from
// fully-automatic hits.
type MenuLookup struct {
	Lookup
	Chooser Chooser
	// MenuInteractions counts categories resolved through the menu.
	MenuInteractions int
}

var _ debugger.TestLookup = (*MenuLookup)(nil)

// Judge implements debugger.TestLookup.
func (m *MenuLookup) Judge(n *exectree.Node) debugger.Verdict {
	if v := m.Lookup.Judge(n); v != debugger.DontKnow {
		return v
	}
	if m.Chooser == nil || m.Spec == nil || m.DB == nil || n.Unit.Name != m.Spec.Unit {
		return debugger.DontKnow
	}
	// Build the frame via the menu.
	props := map[string]bool{}
	var picked []*Choice
	for _, cat := range m.Spec.Categories {
		var eligible []*Choice
		for _, ch := range cat.Choices {
			if selectorHolds(m.Spec, ch.Selector, props) {
				eligible = append(eligible, ch)
			}
		}
		if len(eligible) == 0 {
			return debugger.DontKnow
		}
		chosen := m.Chooser.Choose(m.Spec.Unit, cat, eligible, n.Ins)
		if chosen == nil {
			return debugger.DontKnow
		}
		m.MenuInteractions++
		picked = append(picked, chosen)
		for _, p := range chosen.Properties {
			props[p] = true
		}
	}
	f := &Frame{Unit: m.Spec.Unit, Choices: picked, Props: props}
	rep := m.DB.Lookup(f.Code())
	if rep == nil {
		m.Misses++
		return debugger.DontKnow
	}
	m.Hits++
	if rep.Pass {
		return debugger.Correct
	}
	return debugger.Incorrect
}

// MultiLookup consults several lookups in order (one per tested unit).
type MultiLookup []debugger.TestLookup

var _ debugger.TestLookup = MultiLookup(nil)

// Judge implements debugger.TestLookup.
func (m MultiLookup) Judge(n *exectree.Node) debugger.Verdict {
	for _, l := range m {
		if v := l.Judge(n); v != debugger.DontKnow {
			return v
		}
	}
	return debugger.DontKnow
}

// FramesByScript groups generated frames per script name, mirroring the
// paper's observation that script_1 contains (more, mixed, large) and
// (more, mixed, average).
func FramesByScript(frames []*Frame) map[string][]*Frame {
	out := make(map[string][]*Frame)
	for _, f := range frames {
		for _, s := range f.Scripts {
			out[s] = append(out[s], f)
		}
	}
	for _, fs := range out {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Code() < fs[j].Code() })
	}
	return out
}
