// Package experiments regenerates every figure and worked session of the
// paper's evaluation, plus the quantitative claims of Sections 8 and 9
// and the ablations called out in DESIGN.md. Each experiment returns its
// report as text; cmd/gadt-experiments prints them and EXPERIMENTS.md
// records the outputs next to the paper's versions.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gadt/internal/assertion"
	"gadt/internal/corpus"
	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/gadt"
	"gadt/internal/obs"
	"gadt/internal/paper"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/printer"
	"gadt/internal/progen"
	"gadt/internal/slicing/static"
	"gadt/internal/slicing/weiser"
	"gadt/internal/tgen"
)

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (string, error)
}

// All returns the experiments in presentation order.
func All() []Experiment {
	return []Experiment{
		{"F1", "Figure 1: T-GEN test frames for arrsum", RunF1},
		{"F2", "Figure 2: static slice of program p on mul", RunF2},
		{"S3", "Section 3: algorithmic debugging session (P/Q/R)", RunS3},
		{"F7", "Figure 7: execution tree of the sqrtest program", RunF7},
		{"F8", "Figure 8: execution tree sliced on computs.r1", RunF8},
		{"F9", "Figure 9: execution tree sliced on partialsums.s2", RunF9},
		{"S6", "Section 6: program transformation examples", RunS6},
		{"S8", "Section 8: full GADT session on sqrtest", RunS8},
		{"BASELINE", "Slicer baseline: Weiser-84 vs the SDG slicer", RunBaseline},
		{"INTERACTIONS", "Interaction counts: pure AD vs +tests vs +slicing vs GADT", RunInteractions},
		{"GROWTH", "Section 9: transformation growth factors", RunGrowth},
		{"MULTIBUG", "Section 5.3.3 Q&A: bugs localized one correction cycle at a time", RunMultiBug},
		{"TRAVERSAL", "Ablation: execution-tree traversal strategies", RunTraversal},
		{"ABLATION", "Ablation: answer sources on sqrtest", RunAblation},
		{"HINTS", "Static anomaly hints: oracle queries with and without plint", RunHints},
	}
}

// Lookup finds an experiment by ID (case-insensitive).
func Lookup(id string) *Experiment {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return &e
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// F1 — T-GEN frames

// RunF1 generates the arrsum test frames and groups them by script,
// reproducing "script_1 contains two frames: (more, mixed, large) and
// (more, mixed, average)".
func RunF1() (string, error) {
	spec, err := tgen.ParseSpec(paper.ArrsumSpec)
	if err != nil {
		return "", err
	}
	frames := spec.Generate()
	var b strings.Builder
	fmt.Fprintf(&b, "test specification: %s (%d categories)\n", spec.Unit, len(spec.Categories))
	fmt.Fprintf(&b, "generated frames: %d\n", len(frames))
	for _, f := range frames {
		fmt.Fprintf(&b, "  %-34s scripts=%v results=%v\n", f, f.Scripts, f.Results)
	}
	byScript := tgen.FramesByScript(frames)
	var scripts []string
	for s := range byScript {
		scripts = append(scripts, s)
	}
	sort.Strings(scripts)
	for _, s := range scripts {
		var codes []string
		for _, f := range byScript[s] {
			codes = append(codes, f.String())
		}
		fmt.Fprintf(&b, "%s: %s\n", s, strings.Join(codes, " "))
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// F2 — static slicing

// RunF2 slices Figure 2's program p on mul at the last line.
func RunF2() (string, error) {
	sys, err := gadt.Load("p.pas", paper.SliceExample)
	if err != nil {
		return "", err
	}
	s := sys.StaticSlicer()
	mul := static.LookupVar(sys.Info, sys.Info.Main, "mul")
	sl := s.OnVarAtEnd(sys.Info.Main, mul)
	var b strings.Builder
	b.WriteString("--- original program ---\n")
	b.WriteString(printer.Print(sys.Info.Program))
	b.WriteString("--- slice on mul at the last line ---\n")
	b.WriteString(sl.Render())
	fmt.Fprintf(&b, "--- %s ---\n", sl.Describe())
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// BASELINE — Weiser-84 vs SDG slicing

// RunBaseline compares the Weiser-84 baseline slicer with the SDG-based
// slicer on intraprocedural criteria: both must compute the same
// statement sets (they do, differentially tested); the SDG slicer
// additionally crosses procedure boundaries with calling-context
// sensitivity.
func RunBaseline() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-10s %12s %12s\n", "program", "criterion", "weiser-84", "sdg")
	type subject struct {
		name, src, varName string
	}
	subjects := []subject{
		{"figure-2", paper.SliceExample, "mul"},
		{"figure-2", paper.SliceExample, "sum"},
		{"loop-goto", paper.LoopGoto, "acc"},
		{"loop-goto", paper.LoopGoto, "i"},
	}
	for _, s := range subjects {
		sys, err := gadt.Load(s.name+".pas", s.src)
		if err != nil {
			return "", err
		}
		v := static.LookupVar(sys.Info, sys.Info.Main, s.varName)
		w := &weiser.Slicer{Info: sys.Info}
		wsl, err := w.OnVarAtEnd(sys.Info.Main, v)
		if err != nil {
			return "", err
		}
		ssl := sys.StaticSlicer().OnVarAtEnd(sys.Info.Main, v)
		fmt.Fprintf(&b, "%-22s %-10s %12d %12d\n", s.name, s.varName, wsl.StmtCount(), ssl.StmtCount())
	}
	b.WriteString("(identical statement sets on intraprocedural criteria — differentially tested;\n")
	b.WriteString(" the SDG slicer additionally crosses calls, e.g. sqrtest's r1 slice spans 7 routines)\n")
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// S3 — P/Q/R session

// RunS3 reproduces the Section 3 interaction session.
func RunS3() (string, error) {
	sys, err := gadt.Load("pqr.pas", paper.PQR)
	if err != nil {
		return "", err
	}
	run := sys.TraceOriginal("")
	oracle := &debugger.ScriptedOracle{
		ByUnit: map[string]debugger.Answer{
			"p": {Verdict: debugger.Incorrect},
			"q": {Verdict: debugger.Correct},
			"r": {Verdict: debugger.Incorrect},
		},
	}
	out, err := run.Debug(oracle, gadt.DebugConfig{})
	if err != nil {
		return "", err
	}
	return renderSession(out), nil
}

// ---------------------------------------------------------------------------
// F7/F8/F9 — execution trees

// RunF7 prints the execution tree of the sqrtest program.
func RunF7() (string, error) {
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		return "", err
	}
	run := sys.TraceOriginal("")
	var b strings.Builder
	fmt.Fprintf(&b, "program output: %s", run.Output)
	fmt.Fprintf(&b, "execution tree (%d nodes):\n", run.Tree.Size())
	run.Tree.Render(&b, nil, nil)
	return b.String(), nil
}

func slicedTree(unit, output string) (string, error) {
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		return "", err
	}
	run := sys.TraceOriginal("")
	var target *exectree.Node
	run.Tree.Walk(func(n *exectree.Node) bool {
		if target == nil && n.Unit.Name == unit {
			target = n
		}
		return true
	})
	if target == nil {
		return "", fmt.Errorf("unit %s not traced", unit)
	}
	sl, err := run.Recorder.SliceOnOutput(run.Tree, target, output)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "slice on output %s of %s: %d of %d nodes kept\n",
		output, unit, sl.Size(), run.Tree.Size())
	run.Tree.Render(&b, sl.Keep, nil)
	return b.String(), nil
}

// RunF8 prints the tree after the first slicing step (computs, r1).
func RunF8() (string, error) { return slicedTree("computs", "r1") }

// RunF9 prints the tree after the second slicing step (partialsums, s2).
func RunF9() (string, error) { return slicedTree("partialsums", "s2") }

// ---------------------------------------------------------------------------
// S6 — the transformation examples

// RunS6 reproduces the paper's Section 6 transformation examples:
// conversion of global variables to parameters, breaking a global goto
// into an exit-condition parameter, and handling a goto that leaves a
// loop — each shown as original → transformed, with the outputs proven
// equal.
func RunS6() (string, error) {
	var b strings.Builder
	subjects := []struct{ title, src string }{
		{"conversion of global variables to parameters", paper.GlobalSideEffects},
		{"breaking a global goto (nested q -> label 9 in p)", paper.GlobalGoto},
		{"goto out of a loop", paper.LoopGoto},
	}
	for _, s := range subjects {
		sys, err := gadt.Load("s6.pas", s.src)
		if err != nil {
			return "", err
		}
		res, err := sys.Transform()
		if err != nil {
			return "", err
		}
		orig := sys.TraceOriginal("")
		xform, err := sys.Trace("")
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "--- %s ---\n", s.title)
		b.WriteString("original:\n")
		b.WriteString(indent(printer.Print(sys.Info.Program)))
		b.WriteString("transformed:\n")
		b.WriteString(indent(printer.Print(res.Program)))
		fmt.Fprintf(&b, "outputs equal: %v (%q)\n\n", orig.Output == xform.Output, xform.Output)
	}
	return b.String(), nil
}

func indent(s string) string {
	var b strings.Builder
	for _, l := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  " + l + "\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// S8 — the full GADT session

// arrsumGen generates concrete inputs for arrsum frames.
func arrsumGen(f *tgen.Frame) ([]interp.Value, bool) {
	mk := func(vals ...int64) *interp.ArrayVal {
		a := &interp.ArrayVal{Lo: 1, Hi: 100, Elems: make([]interp.Value, 100)}
		for i := range a.Elems {
			a.Elems[i] = interp.IntV(0)
		}
		for i, v := range vals {
			a.Elems[i] = interp.IntV(v)
		}
		return a
	}
	var vals []int64
	var n int64
	switch f.Choices[0].Name {
	case "zero":
		n = 0
	case "one":
		n, vals = 1, []int64{5}
	case "two":
		n = 2
		if f.Choices[1].Name == "negative" {
			vals = []int64{-3, -4}
		} else {
			vals = []int64{1, 2}
		}
	case "more":
		n = 3
		switch {
		case f.Choices[1].Name == "positive":
			vals = []int64{2, 3, 4}
		case f.Choices[1].Name == "negative":
			vals = []int64{-2, -3, -4}
		case f.Choices[2].Name == "large":
			vals = []int64{-50, 60, 1}
		default:
			vals = []int64{-10, 30, 2}
		}
	}
	return []interp.Value{interp.ArrV(mk(vals...)), interp.IntV(n), interp.IntV(0)}, true
}

func arrsumCheck(_ *tgen.Frame, ci *interp.CallInfo) bool {
	a, _ := ci.Ins[0].Value.AsArray()
	n, _ := ci.Ins[1].Value.AsInt()
	var want int64
	for i := int64(0); i < n && i < int64(len(a.Elems)); i++ {
		if iv, ok := a.Elems[i].AsInt(); ok {
			want += iv
		}
	}
	got, _ := ci.Outs[0].Value.AsInt()
	return got == want
}

// arrsumLookup builds the test-report database for arrsum (the paper's
// premise: "Presuming that we have a test specification, a test report
// database and an automatic test frame selector function for the
// procedure arrsum").
func arrsumLookup() (*tgen.Lookup, error) {
	sys, err := gadt.Load("arrsum.pas", paper.ArrsumProgram)
	if err != nil {
		return nil, err
	}
	spec, err := tgen.ParseSpec(paper.ArrsumSpec)
	if err != nil {
		return nil, err
	}
	runner := &tgen.Runner{Info: sys.Info, Spec: spec, Gen: arrsumGen, Chk: arrsumCheck}
	db, err := runner.RunAll()
	if err != nil {
		return nil, err
	}
	return &tgen.Lookup{Spec: spec, DB: db}, nil
}

// RunS8 reproduces the Section 8 walkthrough: GADT (tests + slicing)
// localizes the decrement bug; the arrsum query is answered by the test
// database and never shown to the user.
func RunS8() (string, error) {
	lookup, err := arrsumLookup()
	if err != nil {
		return "", err
	}
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		return "", err
	}
	run := sys.TraceOriginal("")
	oracle, err := gadt.IntendedOracleOriginal(paper.SqrtestFixed)
	if err != nil {
		return "", err
	}
	out, err := run.Debug(oracle, gadt.DebugConfig{Slicing: true, Tests: lookup})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(renderSession(out))
	fmt.Fprintf(&b, "\nuser questions: %d   answered by tests: %d   slices: %d\n",
		out.Questions, out.ByTests, out.Slices)
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// INTERACTIONS — the headline comparison

type mode struct {
	name    string
	tests   bool
	slicing bool
}

var modes = []mode{
	{"pure AD", false, false},
	{"AD+tests", true, false},
	{"AD+slicing", false, true},
	{"GADT (tests+slicing)", true, true},
}

// leafTested answers for leaf invocations only, simulating a test
// database with full coverage of the leaf routines (the tested-library
// premise of Section 5.3.2) by replaying the reference implementation.
type leafTested struct {
	oracle debugger.Oracle
}

func (l leafTested) Judge(n *exectree.Node) debugger.Verdict {
	if len(n.Children) > 0 || n.IsRoot() {
		return debugger.DontKnow
	}
	a, err := l.oracle.Ask(&debugger.Query{Node: n, Text: "(test lookup) " + n.Label(nil), Outputs: n.OutputNames()})
	if err != nil {
		return debugger.DontKnow
	}
	switch a.Verdict {
	case debugger.Correct:
		return debugger.Correct
	case debugger.Incorrect:
		return debugger.Incorrect
	}
	return debugger.DontKnow
}

// RunInteractions measures user-question counts on sqrtest and on
// synthetic programs of growing size.
func RunInteractions() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-22s %8s %8s %8s\n", "subject", "mode", "nodes", "questions", "auto")

	measure := func(name, buggySrc, fixedSrc string, tests func(debugger.Oracle) debugger.TestLookup) error {
		for _, m := range modes {
			sys, err := gadt.Load(name+".pas", buggySrc)
			if err != nil {
				return err
			}
			run, err := sys.Trace("")
			if err != nil {
				return err
			}
			oracle, err := gadt.IntendedOracle(fixedSrc)
			if err != nil {
				return err
			}
			cfg := gadt.DebugConfig{Slicing: m.slicing}
			if m.tests && tests != nil {
				cfg.Tests = tests(oracle)
			}
			out, err := run.Debug(oracle, cfg)
			if err != nil {
				return err
			}
			loc := "-"
			if out.Localized() {
				loc = out.Bug.Unit.Name
			}
			fmt.Fprintf(&b, "%-28s %-22s %8d %8d %8d   bug: %s\n",
				name, m.name, run.Tree.Size(), out.Questions,
				out.ByTests+out.ByAssertions+out.ByMemo, loc)
		}
		return nil
	}

	// sqrtest with the paper's arrsum test database.
	lookup, err := arrsumLookup()
	if err != nil {
		return "", err
	}
	if err := measure("sqrtest", paper.Sqrtest, paper.SqrtestFixed,
		func(debugger.Oracle) debugger.TestLookup { return lookup }); err != nil {
		return "", err
	}

	// Synthetic programs: leaves covered by tests.
	for _, shape := range []progen.Config{
		{Depth: 3, Fanout: 2, BugPath: []int{1, 0, 1}},
		{Depth: 4, Fanout: 2, BugPath: []int{1, 1, 0, 1}},
		{Depth: 3, Fanout: 3, BugPath: []int{2, 1, 2}},
		{Depth: 5, Fanout: 2, BugPath: []int{1, 0, 1, 0, 1}},
	} {
		p := progen.Generate(shape)
		name := fmt.Sprintf("synth(d=%d,f=%d)", shape.Depth, shape.Fanout)
		if err := measure(name, p.Buggy, p.Fixed,
			func(o debugger.Oracle) debugger.TestLookup { return leafTested{oracle: o} }); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// GROWTH — Section 9

// RunGrowth measures transformed-program growth (printed lines).
func RunGrowth() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %10s %8s\n", "program", "orig", "transformed", "factor")
	subjects := []struct {
		name, src string
	}{
		{"pqr", paper.PQR},
		{"global-side-effects", paper.GlobalSideEffects},
		{"global-goto", paper.GlobalGoto},
		{"loop-goto", paper.LoopGoto},
		{"sqrtest", paper.Sqrtest},
		{"arrsum", paper.ArrsumProgram},
	}
	for _, shape := range []progen.Config{
		{Depth: 3, Fanout: 2, Style: progen.Globals},
		{Depth: 4, Fanout: 2, Style: progen.Globals, Loops: true},
	} {
		p := progen.Generate(shape)
		subjects = append(subjects, struct{ name, src string }{
			fmt.Sprintf("synth-globals(d=%d,f=%d,loops=%v)", shape.Depth, shape.Fanout, shape.Loops), p.Buggy,
		})
	}
	var worst float64
	for _, s := range subjects {
		sys, err := gadt.Load(s.name+".pas", s.src)
		if err != nil {
			return "", err
		}
		res, err := sys.Transform()
		if err != nil {
			return "", err
		}
		orig := len(strings.Split(printer.Print(sys.Info.Program), "\n"))
		xformed := len(strings.Split(printer.Print(res.Program), "\n"))
		factor := float64(xformed) / float64(orig)
		if factor > worst {
			worst = factor
		}
		fmt.Fprintf(&b, "%-24s %10d %10d %8.2f\n", s.name, orig, xformed, factor)
	}
	fmt.Fprintf(&b, "worst growth factor: %.2f (paper: \"small procedures usually grow less than a factor of two\")\n", worst)
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// MULTIBUG — iterative correction cycles

// RunMultiBug reproduces the paper's Section 5.3.3 answer about multiple
// bugs: "if there is a bug in a sub-computation, this bug will be
// localized first, and the [other] bug will be localized when this bug
// has been corrected." Two bugs are planted (decrement and square); the
// debugger finds one, the fix is applied, and a second session finds the
// other.
func RunMultiBug() (string, error) {
	doubleBuggy := strings.Replace(paper.Sqrtest,
		"r2 := y * y;", "r2 := y * y + 1; (* second planted bug *)", 1)
	fullyFixed := paper.SqrtestFixed // reference: both bugs corrected

	var b strings.Builder
	src := doubleBuggy
	fixes := map[string]string{
		"decrement": "decrement := y - 1;",
		"square":    "r2 := y * y;",
	}
	patches := map[string]string{
		"decrement": "decrement := y + 1; (* a planted bug, should be: y - 1 *)",
		"square":    "r2 := y * y + 1; (* second planted bug *)",
	}
	for cycle := 1; cycle <= 3; cycle++ {
		sys, err := gadt.Load("multibug.pas", src)
		if err != nil {
			return "", err
		}
		run := sys.TraceOriginal("")
		oracle, err := gadt.IntendedOracleOriginal(fullyFixed)
		if err != nil {
			return "", err
		}
		out, err := run.Debug(oracle, gadt.DebugConfig{Slicing: true, NoRootAssumption: true})
		if err != nil {
			return "", err
		}
		if !out.Localized() {
			fmt.Fprintf(&b, "cycle %d: no further bug localized — program behaves as intended (output %q)\n",
				cycle, run.Output)
			break
		}
		unit := out.Bug.Unit.Name
		fmt.Fprintf(&b, "cycle %d: error localized inside the body of %s (%d questions); applying the fix\n",
			cycle, unit, out.Questions)
		patch, ok := patches[unit]
		if !ok {
			return "", fmt.Errorf("localized unexpected unit %s", unit)
		}
		src = strings.Replace(src, patch, fixes[unit], 1)
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// TRAVERSAL — strategy ablation

// RunTraversal compares traversal strategies (paper: "generally it
// doesn't matter which traversal method is used" for correctness; the
// question count differs).
func RunTraversal() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-18s %9s   %s\n", "subject", "strategy", "questions", "localized")
	subjects := []struct {
		name, buggy, fixed string
	}{
		{"sqrtest", paper.Sqrtest, paper.SqrtestFixed},
	}
	for _, shape := range []progen.Config{
		{Depth: 3, Fanout: 2, BugPath: []int{1, 0, 1}},
		{Depth: 4, Fanout: 3, BugPath: []int{2, 0, 1, 2}},
	} {
		p := progen.Generate(shape)
		subjects = append(subjects, struct{ name, buggy, fixed string }{
			fmt.Sprintf("synth(d=%d,f=%d)", shape.Depth, shape.Fanout), p.Buggy, p.Fixed,
		})
	}
	for _, s := range subjects {
		for _, strat := range debugger.Strategies() {
			// One registry per run: the question column is sourced from the
			// observability counters rather than the outcome struct, so the
			// experiment doubles as an end-to-end check of the metrics.
			reg := obs.NewRegistry()
			sys, err := gadt.LoadObserved(s.name+".pas", s.buggy, reg, nil)
			if err != nil {
				return "", err
			}
			run, err := sys.Trace("")
			if err != nil {
				return "", err
			}
			oracle, err := gadt.IntendedOracle(s.fixed)
			if err != nil {
				return "", err
			}
			out, err := run.Debug(oracle, gadt.DebugConfig{Strategy: strat})
			if err != nil {
				return "", err
			}
			questions := reg.CounterVec("debugger.oracle.queries.strategy", "strategy").With(strat.String()).Value()
			if questions != int64(out.Questions) {
				return "", fmt.Errorf("traversal %s/%s: registry counted %d queries, outcome %d",
					s.name, strat, questions, out.Questions)
			}
			loc := "-"
			if out.Localized() {
				loc = out.Bug.Unit.Name
			}
			fmt.Fprintf(&b, "%-28s %-18s %9d   %s\n", s.name, strat, questions, loc)
		}
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// ABLATION — answer sources on sqrtest

// RunAblation shows, per configuration, which source answered each query
// on the sqrtest bug hunt, including assertions.
func RunAblation() (string, error) {
	lookup, err := arrsumLookup()
	if err != nil {
		return "", err
	}
	db := assertion.NewDB()
	if err := db.AddText("arrsum", "b = sum(a, n)"); err != nil {
		return "", err
	}
	if err := db.AddText("increment", "result = y + 1"); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %10s %6s %6s %6s %7s\n", "configuration", "questions", "tests", "asserts", "memo", "slices")
	type cfg struct {
		name string
		c    gadt.DebugConfig
	}
	cfgs := []cfg{
		{"pure AD", gadt.DebugConfig{}},
		{"AD + test db", gadt.DebugConfig{Tests: lookup}},
		{"AD + assertions", gadt.DebugConfig{Assertions: db}},
		{"AD + slicing", gadt.DebugConfig{Slicing: true}},
		{"GADT (tests+assertions+slicing)", gadt.DebugConfig{Tests: lookup, Assertions: db, Slicing: true}},
	}
	for _, c := range cfgs {
		sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
		if err != nil {
			return "", err
		}
		run := sys.TraceOriginal("")
		oracle, err := gadt.IntendedOracleOriginal(paper.SqrtestFixed)
		if err != nil {
			return "", err
		}
		out, err := run.Debug(oracle, c.c)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-34s %10d %6d %6d %6d %7d   bug: %s\n",
			c.name, out.Questions, out.ByTests, out.ByAssertions, out.ByMemo, out.Slices, out.Bug.Unit.Name)
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// HINTS — static anomaly hints vs. oracle-query counts

// hintedBuggy forgets to initialize t inside broken — the planted bug IS
// a dataflow anomaly (P001), so plint scores broken as suspicious and
// the debugger asks about it before the two healthy siblings.
const hintedBuggy = `
program hinted;
var a, b, c, total: integer;

procedure stepa(x: integer; var r: integer);
begin
  r := x + 1;
end;

procedure stepb(x: integer; var r: integer);
begin
  r := x * 2;
end;

procedure broken(x: integer; var r: integer);
var t: integer;
begin
  r := x + t;
end;

begin
  stepa(1, a);
  stepb(2, b);
  broken(3, c);
  total := a + b + c;
  writeln(total);
end.
`

const hintedFixed = `
program hinted;
var a, b, c, total: integer;

procedure stepa(x: integer; var r: integer);
begin
  r := x + 1;
end;

procedure stepb(x: integer; var r: integer);
begin
  r := x * 2;
end;

procedure broken(x: integer; var r: integer);
var t: integer;
begin
  t := 5;
  r := x + t;
end;

begin
  stepa(1, a);
  stepb(2, b);
  broken(3, c);
  total := a + b + c;
  writeln(total);
end.
`

// HintsRow is one RunHints measurement.
type HintsRow struct {
	Subject   string
	Strategy  debugger.Strategy
	NoHints   int // oracle questions without hints
	WithHints int // oracle questions with lint hints
	Localized string
}

// HintsData debugs each buggy subject twice per traversal strategy —
// without and with plint's static anomaly hints — and reports the oracle
// question counts. Subjects whose source lints clean produce empty hint
// maps, so both runs are identical there; hints can only help, never
// mislead the search (they reorder questions, not verdicts).
func HintsData() ([]HintsRow, error) {
	type subject struct {
		name, buggy, fixed, input string
	}
	subjects := []subject{{"hinted", hintedBuggy, hintedFixed, ""}}
	for _, p := range corpus.All() {
		if p.Buggy == "" {
			continue
		}
		subjects = append(subjects, subject{p.Name, p.Buggy, p.Source, p.Input})
	}
	var rows []HintsRow
	for _, s := range subjects {
		for _, strat := range debugger.Strategies() {
			row := HintsRow{Subject: s.name, Strategy: strat, Localized: "-"}
			for _, withHints := range []bool{false, true} {
				sys, err := gadt.Load(s.name+".pas", s.buggy)
				if err != nil {
					return nil, err
				}
				run, err := sys.Trace(s.input)
				if err != nil {
					return nil, err
				}
				oracle, err := gadt.IntendedOracle(s.fixed)
				if err != nil {
					return nil, err
				}
				cfg := gadt.DebugConfig{Strategy: strat}
				if withHints {
					cfg.Hints = sys.LintHints()
				}
				out, err := run.Debug(oracle, cfg)
				if err != nil {
					return nil, err
				}
				if withHints {
					row.WithHints = out.Questions
					if out.Localized() {
						row.Localized = out.Bug.Unit.Name
					}
				} else {
					row.NoHints = out.Questions
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunHints renders the hints measurement: the oracle-free bug hints of
// the lint layer convert static anomaly findings into saved questions
// whenever the anomaly and the bug coincide.
func RunHints() (string, error) {
	rows, err := HintsData()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %9s %9s %7s   %s\n", "subject", "strategy", "no-hints", "hints", "delta", "localized")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-18s %9d %9d %+7d   %s\n",
			r.Subject, r.Strategy, r.NoHints, r.WithHints, r.WithHints-r.NoHints, r.Localized)
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------

// renderSession renders a debugging transcript the way the paper prints
// interaction sessions (system output bold in the paper; plain here).
func renderSession(out *debugger.Outcome) string {
	var b strings.Builder
	for _, ev := range out.Transcript {
		switch ev.Kind {
		case debugger.EvQuestion:
			fmt.Fprintf(&b, "%s\n> %s", ev.Text, ev.Verdict)
			if ev.Detail != "" {
				fmt.Fprintf(&b, ", %s", ev.Detail)
			}
			b.WriteString("\n")
		case debugger.EvTest:
			fmt.Fprintf(&b, "[answered by test database] %s -> %s\n", ev.Text, ev.Verdict)
		case debugger.EvAssertion:
			fmt.Fprintf(&b, "[answered by assertion] %s -> %s\n", ev.Text, ev.Verdict)
		case debugger.EvMemo:
			fmt.Fprintf(&b, "[remembered] %s -> %s\n", ev.Text, ev.Verdict)
		case debugger.EvSlice:
			fmt.Fprintf(&b, "[%s; %s]\n", ev.Text, ev.Detail)
		case debugger.EvLocalized:
			fmt.Fprintf(&b, "%s.\n", strings.ToUpper(ev.Text[:1])+ev.Text[1:])
		}
	}
	return b.String()
}

// RunAll runs every experiment, concatenating reports; used by the CLI
// and smoke-tested in the test suite.
func RunAll() (string, error) {
	var b strings.Builder
	for _, e := range All() {
		fmt.Fprintf(&b, "=== %s — %s ===\n", e.ID, e.Title)
		out, err := e.Run()
		if err != nil {
			return "", fmt.Errorf("%s: %w", e.ID, err)
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}
