package experiments_test

import (
	"strconv"
	"strings"
	"testing"

	"gadt/internal/experiments"
)

func run(t *testing.T, id string) string {
	t.Helper()
	e := experiments.Lookup(id)
	if e == nil {
		t.Fatalf("experiment %s not registered", id)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if strings.TrimSpace(out) == "" {
		t.Fatalf("%s produced no output", id)
	}
	return out
}

func TestF1(t *testing.T) {
	out := run(t, "F1")
	if !strings.Contains(out, "script_1: (more, mixed, average) (more, mixed, large)") {
		t.Errorf("F1 does not reproduce the paper's script_1 frames:\n%s", out)
	}
	if !strings.Contains(out, "generated frames: 8") {
		t.Errorf("F1 frame count:\n%s", out)
	}
}

func TestF2(t *testing.T) {
	out := run(t, "F2")
	if !strings.Contains(out, "mul := x * y") || strings.Contains(strings.Split(out, "--- slice")[1], "sum := x + y") {
		t.Errorf("F2 slice wrong:\n%s", out)
	}
}

func TestS3(t *testing.T) {
	out := run(t, "S3")
	for _, want := range []string{
		"p(In a: 5, In c: 7, Out b: 10, Out d: 6)?",
		"q(In a: 5, Out b: 10)?",
		"r(In c: 7, Out d: 6)?",
		"localized inside the body of r",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("S3 missing %q:\n%s", want, out)
		}
	}
}

func TestF7(t *testing.T) {
	out := run(t, "F7")
	if !strings.Contains(out, "execution tree (14 nodes)") {
		t.Errorf("F7 node count:\n%s", out)
	}
	if !strings.Contains(out, "computs(In y: 3, Out r1: 12, Out r2: 9)") {
		t.Errorf("F7 missing computs label:\n%s", out)
	}
}

func TestF8(t *testing.T) {
	out := run(t, "F8")
	if !strings.Contains(out, "11 of 14 nodes kept") {
		t.Errorf("F8 counts:\n%s", out)
	}
	for _, l := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(l)
		if strings.HasPrefix(trimmed, "square") || strings.HasPrefix(trimmed, "test(") || strings.HasPrefix(trimmed, "comput2") {
			t.Errorf("F8 kept pruned node %q:\n%s", trimmed, out)
		}
	}
}

func TestF9(t *testing.T) {
	out := run(t, "F9")
	if strings.Contains(out, "sum1") || strings.Contains(out, "increment") {
		t.Errorf("F9 kept sum1/increment:\n%s", out)
	}
	if !strings.Contains(out, "decrement") {
		t.Errorf("F9 lost decrement:\n%s", out)
	}
}

func TestS6(t *testing.T) {
	out := run(t, "S6")
	for _, want := range []string{
		"procedure p(var y: integer; var x: integer; out z: integer)",
		"exitcond",
		"outputs equal: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("S6 missing %q", want)
		}
	}
	if strings.Contains(out, "outputs equal: false") {
		t.Error("S6 transformation changed behavior")
	}
}

func TestBaseline(t *testing.T) {
	out := run(t, "BASELINE")
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) == 4 && f[0] != "program" {
			if f[2] != f[3] {
				t.Errorf("baseline and SDG disagree: %s", l)
			}
		}
	}
}

func TestS8(t *testing.T) {
	out := run(t, "S8")
	for _, want := range []string{
		"[answered by test database] arrsum",
		"error has been localized inside the body of decrement",
		"user questions: 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("S8 missing %q:\n%s", want, out)
		}
	}
}

func TestInteractionsShape(t *testing.T) {
	out := run(t, "INTERACTIONS")
	// Every GADT row must localize the planted bug.
	lines := strings.Split(out, "\n")
	var gadtRows, pureRows int
	for _, l := range lines {
		if strings.Contains(l, "GADT") {
			gadtRows++
			if !strings.Contains(l, "bug: ") || strings.Contains(l, "bug: -") {
				t.Errorf("GADT row failed to localize: %s", l)
			}
		}
		if strings.Contains(l, "pure AD") {
			pureRows++
		}
	}
	if gadtRows == 0 || gadtRows != pureRows {
		t.Fatalf("rows: gadt=%d pure=%d\n%s", gadtRows, pureRows, out)
	}
}

func TestGrowthUnderTwo(t *testing.T) {
	out := run(t, "GROWTH")
	if !strings.Contains(out, "worst growth factor") {
		t.Fatalf("no summary:\n%s", out)
	}
	// Paper: "Small procedures usually grow less than a factor of two".
	// Loop extraction (our uniform loop-unit treatment) makes very small
	// loop-heavy programs exceed that, so require the *majority* under 2
	// and a hard cap of 3 on everything.
	var under2, total int
	for _, l := range strings.Split(out, "\n") {
		fields := strings.Fields(l)
		if len(fields) == 4 && fields[3] != "factor" {
			f, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				continue
			}
			total++
			if f < 2.0 {
				under2++
			}
			if f >= 3.0 {
				t.Errorf("growth factor %.2f >= 3 for %s", f, fields[0])
			}
		}
	}
	if total == 0 || under2*3 < total*2 {
		t.Errorf("only %d of %d subjects under 2.0x growth:\n%s", under2, total, out)
	}
}

func TestMultiBug(t *testing.T) {
	out := run(t, "MULTIBUG")
	d := strings.Index(out, "body of decrement")
	s := strings.Index(out, "body of square")
	done := strings.Index(out, "no further bug")
	if d < 0 || s < 0 || done < 0 {
		t.Fatalf("incomplete cycles:\n%s", out)
	}
	if !(d < s && s < done) {
		t.Errorf("cycle order wrong:\n%s", out)
	}
}

func TestTraversalAllLocalize(t *testing.T) {
	out := run(t, "TRAVERSAL")
	for _, l := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		if l == "" {
			continue
		}
		if strings.HasSuffix(strings.TrimSpace(l), "-") {
			t.Errorf("strategy row did not localize: %s", l)
		}
	}
}

func TestAblationMonotone(t *testing.T) {
	out := run(t, "ABLATION")
	// The full GADT configuration must ask strictly fewer questions than
	// pure AD.
	pure, full := -1, -1
	for _, l := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(l, "pure AD"):
			pure = extractFirstInt(l[len("pure AD"):])
		case strings.HasPrefix(l, "GADT"):
			full = extractFirstInt(l[strings.Index(l, ")")+1:])
		}
	}
	if pure < 0 || full < 0 {
		t.Fatalf("could not parse table:\n%s", out)
	}
	if full >= pure {
		t.Errorf("GADT (%d questions) not better than pure AD (%d):\n%s", full, pure, out)
	}
}

// TestHintsNeverIncrease asserts the static-anomaly hints contract: for
// every subject and traversal strategy, running with hints asks no more
// oracle questions than running without — and for the seeded anomaly
// subject (whose bug IS the flagged anomaly) strictly fewer under every
// strategy. Hints must also never change where the bug is localized from
// "found" to "not found".
func TestHintsNeverIncrease(t *testing.T) {
	rows, err := experiments.HintsData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("want measurements for the seeded subject plus at least one corpus program, got %d rows", len(rows))
	}
	corpusSeen := false
	for _, r := range rows {
		if r.WithHints > r.NoHints {
			t.Errorf("%s/%s: hints increased questions %d -> %d", r.Subject, r.Strategy, r.NoHints, r.WithHints)
		}
		if r.Localized == "-" {
			t.Errorf("%s/%s: bug not localized with hints", r.Subject, r.Strategy)
		}
		if r.Subject == "hinted" {
			if r.WithHints >= r.NoHints {
				t.Errorf("hinted/%s: hints should strictly reduce questions, got %d -> %d", r.Strategy, r.NoHints, r.WithHints)
			}
			if r.Localized != "broken" {
				t.Errorf("hinted/%s: localized %q, want broken", r.Strategy, r.Localized)
			}
		} else {
			corpusSeen = true
		}
	}
	if !corpusSeen {
		t.Error("no corpus subject measured")
	}
}

func extractFirstInt(s string) int {
	for _, f := range strings.Fields(s) {
		if v, err := strconv.Atoi(f); err == nil {
			return v
		}
	}
	return -1
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := experiments.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range experiments.All() {
		if !strings.Contains(out, "=== "+e.ID+" ") {
			t.Errorf("RunAll missing section %s", e.ID)
		}
	}
}
