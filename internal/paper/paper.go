// Package paper holds the subject programs used in the GADT paper
// (PLDI'91), transcribed into the Pascal subset accepted by this
// reproduction. They are shared by tests, examples, the experiment
// harness and the benchmarks.
package paper

// Sqrtest is the Figure 4 program: it computes the square of the sum of
// the array [1, 2] in two ways (multiplication vs the n*(n+1)/2 formula
// split into two partial sums) and checks that both agree. The function
// decrement contains the planted bug (y + 1 instead of y - 1), so the
// program prints the erroneous comparison result `false`.
const Sqrtest = `
program main;
type
  intarray = array [1 .. 10] of integer;
var
  isok: boolean;

procedure test(r1, r2: integer; var isok: boolean);
begin
  isok := r1 = r2;
end;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n do
    b := b + a[i];
end;

procedure square(y: integer; var r2: integer);
begin
  r2 := y * y;
end;

procedure comput2(y: integer; var r2: integer);
begin
  square(y, r2);
end;

procedure add(s1, s2: integer; var r1: integer);
begin
  r1 := s1 + s2;
end;

function decrement(y: integer): integer;
begin
  decrement := y + 1; (* a planted bug, should be: y - 1 *)
end;

function increment(y: integer): integer;
begin
  increment := y + 1;
end;

procedure sum2(y: integer; var s2: integer);
begin
  s2 := decrement(y) * y div 2;
end;

procedure sum1(y: integer; var s1: integer);
begin
  s1 := y * increment(y) div 2;
end;

procedure partialsums(y: integer; var s1, s2: integer);
begin
  sum1(y, s1);
  sum2(y, s2);
end;

procedure comput1(y: integer; var r1: integer);
var s1, s2: integer;
begin
  partialsums(y, s1, s2);
  add(s1, s2, r1);
end;

procedure computs(y: integer; var r1, r2: integer);
begin
  comput1(y, r1);
  comput2(y, r2);
end;

procedure sqrtest(ary: intarray; n: integer; var isok: boolean);
var r1, r2, t: integer;
begin
  arrsum(ary, n, t);
  computs(t, r1, r2);
  test(r1, r2, isok);
end;

begin
  sqrtest([1, 2], 2, isok);
  writeln(isok);
end.
`

// SqrtestFixed is Sqrtest with the planted bug corrected; used by tests
// that need a known-good variant (e.g. the intended-semantics oracle).
const SqrtestFixed = `
program main;
type
  intarray = array [1 .. 10] of integer;
var
  isok: boolean;

procedure test(r1, r2: integer; var isok: boolean);
begin
  isok := r1 = r2;
end;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n do
    b := b + a[i];
end;

procedure square(y: integer; var r2: integer);
begin
  r2 := y * y;
end;

procedure comput2(y: integer; var r2: integer);
begin
  square(y, r2);
end;

procedure add(s1, s2: integer; var r1: integer);
begin
  r1 := s1 + s2;
end;

function decrement(y: integer): integer;
begin
  decrement := y - 1;
end;

function increment(y: integer): integer;
begin
  increment := y + 1;
end;

procedure sum2(y: integer; var s2: integer);
begin
  s2 := decrement(y) * y div 2;
end;

procedure sum1(y: integer; var s1: integer);
begin
  s1 := y * increment(y) div 2;
end;

procedure partialsums(y: integer; var s1, s2: integer);
begin
  sum1(y, s1);
  sum2(y, s2);
end;

procedure comput1(y: integer; var r1: integer);
var s1, s2: integer;
begin
  partialsums(y, s1, s2);
  add(s1, s2, r1);
end;

procedure computs(y: integer; var r1, r2: integer);
begin
  comput1(y, r1);
  comput2(y, r2);
end;

procedure sqrtest(ary: intarray; n: integer; var isok: boolean);
var r1, r2, t: integer;
begin
  arrsum(ary, n, t);
  computs(t, r1, r2);
  test(r1, r2, isok);
end;

begin
  sqrtest([1, 2], 2, isok);
  writeln(isok);
end.
`

// SliceExample is the Figure 2 program p: it reads x and y and computes
// sum and mul. The paper slices it on `mul` at the last line; the slice
// drops `sum := 0`, `sum := x + y` and `read(z)`.
const SliceExample = `
program p;
var x, y, z, sum, mul: integer;
begin
  read(x, y);
  mul := 0;
  sum := 0;
  if x <= 1 then
    sum := x + y
  else begin
    read(z);
    mul := x * y;
  end;
  writeln(sum, mul);
end.
`

// PQR is the Section 3 example: P computes b from a via Q and d from c
// via R; R contains a bug (c - 1 instead of c + 1), so algorithmic
// debugging localizes the error inside R.
const PQR = `
program session;
var a, b, c, d: integer;

procedure q(a: integer; var b: integer);
begin
  b := a * 2;
end;

procedure r(c: integer; var d: integer);
begin
  d := c - 1; (* planted bug, should be: c + 1 *)
end;

procedure p(a, c: integer; var b, d: integer);
begin
  q(a, b);
  r(c, d);
end;

begin
  a := 5;
  c := 7;
  p(a, c, b, d);
  writeln(b, d);
end.
`

// GlobalSideEffects exercises the transformation phase: procedures that
// reference and modify non-local variables, mirroring the paper's
// Section 6 example `procedure p` (y := x + 1; z := y - x with x global
// read and z global write).
const GlobalSideEffects = `
program globals;
var x, z: integer;

procedure p(var y: integer);
begin
  y := x + 1;
  z := y - x;
end;

begin
  x := 10;
  p(x);
  writeln(x, z);
end.
`

// GlobalGoto exercises the goto-breaking transformation: a goto from a
// nested procedure q to label 9 declared in p (Section 6's second
// transformation example).
const GlobalGoto = `
program gotos;
label 8;
var v: integer;

procedure p(n: integer);
label 9;

  procedure q(m: integer);
  begin
    v := v + m;
    if m > 3 then
      goto 9;
    v := v + 100;
  end;

begin
  q(n);
  v := v + 1000;
  9: v := v + 1;
end;

begin
  v := 0;
  p(5);
  writeln(v);
  goto 8;
  v := -1;
  8: writeln(v);
end.
`

// LoopGoto exercises the goto-out-of-loop transformation from Section 6:
// a while loop containing a goto addressed outside the loop.
const LoopGoto = `
program loopexit;
label 9;
var i, acc: integer;
begin
  i := 0;
  acc := 0;
  while i < 10 do begin
    i := i + 1;
    acc := acc + i;
    if acc > 12 then
      goto 9;
    acc := acc + 0;
  end;
  acc := acc + 1000;
  9: writeln(i, acc);
end.
`

// ArrsumProcedure is the stand-alone arrsum procedure from Figure 1 with
// a driver; its test specification lives in ArrsumSpec.
const ArrsumProgram = `
program arrtest;
type
  intarray = array [1 .. 100] of integer;
var
  a: intarray;
  n, b: integer;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n do
    b := b + a[i];
end;

begin
  read(n);
  arrsum(a, n, b);
  writeln(b);
end.
`

// ArrsumSpec is the Figure 1 test specification for arrsum, written in
// this reproduction's T-GEN specification language. The `match` clauses
// are the "automatic test frame selector functions" of Section 5.3.2:
// they classify a concrete call (parameters n plus the array contents
// summarized as poscount/negcount) into choices.
const ArrsumSpec = `
test arrsum;

category size_of_array;
  zero:  property SINGLE  match n = 0;
  one:   property SINGLE  match n = 1;
  two:                    match n = 2;
  more:  property MORE    match n > 2;

category type_of_elements;
  positive:                       match (negcount = 0) and (poscount > 0);
  negative:                       match (poscount = 0) and (negcount > 0);
  mixed: if MORE property MIXED   match (poscount > 0) and (negcount > 0);

category deviation;
  small: if not MIXED   match spread <= 10;
  large: if MIXED       match spread > 100;
  average: if MIXED     match (spread > 10) and (spread <= 100);

scripts
  script_1: if MIXED;
  script_2: if not MIXED;

result
  result_1: if MIXED;
`
