package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
)

// Setup wires the standard CLI observability surface: it returns a
// fresh registry and a tracer whose span durations feed that registry.
// traceOut selects the event sink: "" discards events (metrics only),
// "-" writes human-readable lines to stderr, a path ending in .jsonl
// writes raw TraceEvent JSON lines, and any other path writes a Chrome
// trace-event JSON file that loads directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing. The returned close function
// flushes the sink, closes the file, and reports the FIRST write error
// seen anywhere in the trace stream; every CLI must call it before exit
// so a truncated trace file cannot pass unnoticed.
func Setup(traceOut string) (*Registry, *Tracer, func() error, error) {
	reg := NewRegistry()
	var (
		sink TraceSink
		file *os.File
	)
	switch {
	case traceOut == "":
		sink = Discard
	case traceOut == "-":
		sink = NewTextSink(os.Stderr)
	default:
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("trace-out: %w", err)
		}
		file = f
		if strings.HasSuffix(traceOut, ".jsonl") {
			sink = NewJSONLSink(f)
		} else {
			sink = NewChromeSink(f)
		}
	}
	tr := NewTracer(sink)
	tr.Metrics = reg
	closeFn := func() error {
		var first error
		if fs, ok := sink.(FlushSink); ok {
			first = fs.Flush()
		}
		if file != nil {
			if err := file.Close(); err != nil && first == nil {
				first = err
			}
		}
		if first != nil {
			return fmt.Errorf("trace-out: %w", first)
		}
		return nil
	}
	return reg, tr, closeFn, nil
}

// StartProfiles starts pprof profiling: cpuFile receives a CPU profile
// from now until the returned stop function runs; memFile receives a
// heap profile written by stop. Either may be empty. stop is never nil.
func StartProfiles(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return func() error { return nil }, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return func() error { return nil }, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // stabilize live-heap accounting
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
