package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), the format the /metrics ops
// endpoint serves. Dotted metric names become underscore-separated
// (campaign.outcomes -> campaign_outcomes), labeled series keep their
// labels, and duration histograms are exported as summaries: quantile
// series for p50/p95/p99 plus _sum and _count, all in seconds per
// Prometheus convention.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool) // families that already got a # TYPE line

	write := func(kind, series string, render func(name, labels string) error) error {
		name, keys, vals := splitSeries(series)
		pname := promName(name)
		if !typed[pname] {
			typed[pname] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", pname, kind); err != nil {
				return err
			}
		}
		return render(pname, promLabels(keys, vals))
	}

	for _, series := range sortedKeys(s.Counters) {
		v := s.Counters[series]
		err := write("counter", series, func(name, labels string) error {
			_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, v)
			return err
		})
		if err != nil {
			return err
		}
	}
	for _, series := range sortedKeys(s.Gauges) {
		v := s.Gauges[series]
		err := write("gauge", series, func(name, labels string) error {
			_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, v)
			return err
		})
		if err != nil {
			return err
		}
	}

	var hnames []string
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, series := range hnames {
		h := s.Histograms[series]
		err := write("summary", series, func(name, labels string) error {
			for _, q := range []struct {
				q  string
				ns int64
			}{{"0.5", h.P50NS}, {"0.95", h.P95NS}, {"0.99", h.P99NS}} {
				ql := mergeLabels(labels, fmt.Sprintf(`quantile=%q`, q.q))
				if _, err := fmt.Fprintf(w, "%s%s %g\n", name, ql, float64(q.ns)/1e9); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, float64(h.SumNS)/1e9); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count)
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted metric name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set as {k="v",...} ("" when unlabeled).
func promLabels(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		fmt.Fprintf(&b, "%s=%q", promName(k), v)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels appends one rendered pair to an existing {..} label set.
func mergeLabels(labels, pair string) string {
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}
