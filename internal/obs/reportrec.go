package obs

import "time"

// ReportRecorder is the shared obs backend for pool-style campaigns
// (the mutation campaign and the differential harness): live in-flight
// and completion tracking for the ops endpoint and heartbeat, one
// labeled outcome counter per status, a per-job duration histogram, and
// the end-of-run totals. All instruments live under one prefix:
//
//	<prefix>.inflight          gauge      jobs currently evaluating
//	<prefix>.done              counter    jobs completed (live)
//	<prefix>.outcomes{status}  counter    verdicts by status (live)
//	<prefix>.eval              histogram  per-job wall time, percentiles
//	<prefix>.workers           gauge      pool size (set by Finish)
//
// A nil registry yields a recorder whose methods are no-ops, so engines
// call it unconditionally.
type ReportRecorder struct {
	outcomes *CounterVec
	inflight *Gauge
	done     *Counter
	eval     *Histogram
	workers  *Gauge
}

// NewReportRecorder builds the instrument set under prefix. m may be
// nil (every handle degrades to a scratch instrument).
func NewReportRecorder(m *Registry, prefix string) *ReportRecorder {
	return &ReportRecorder{
		outcomes: m.CounterVec(prefix+".outcomes", "status"),
		inflight: m.Gauge(prefix + ".inflight"),
		done:     m.Counter(prefix + ".done"),
		eval:     m.Histogram(prefix + ".eval"),
		workers:  m.Gauge(prefix + ".workers"),
	}
}

// JobStart marks one job entering evaluation. Safe on nil.
func (r *ReportRecorder) JobStart() {
	if r == nil {
		return
	}
	r.inflight.Add(1)
}

// JobDone marks one job finished with the given status verdict and
// wall time. Safe on nil.
func (r *ReportRecorder) JobDone(status string, d time.Duration) {
	if r == nil {
		return
	}
	r.inflight.Add(-1)
	r.done.Inc()
	r.outcomes.With(status).Inc()
	r.eval.Observe(d)
}

// Count records n pre-classified outcomes that never entered the pool
// (e.g. mutants proven equivalent by static triage). Safe on nil.
func (r *ReportRecorder) Count(status string, n int64) {
	if r == nil {
		return
	}
	r.outcomes.With(status).Add(n)
}

// StatusCount reads the live tally for one status (heartbeat lines show
// killed/survived so far). Safe on nil.
func (r *ReportRecorder) StatusCount(status string) int64 {
	if r == nil {
		return 0
	}
	return r.outcomes.With(status).Value()
}

// DoneCount reads the live completed-job tally. Safe on nil.
func (r *ReportRecorder) DoneCount() int64 {
	if r == nil {
		return 0
	}
	return r.done.Value()
}

// Finish records the end-of-run pool facts. Safe on nil.
func (r *ReportRecorder) Finish(workers int) {
	if r == nil {
		return
	}
	r.workers.Set(int64(workers))
}
