package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Error("Counter is not idempotent per name")
	}
	g := r.Gauge("depth.max")
	g.Set(3)
	g.SetMax(7)
	g.SetMax(2) // lower: kept at 7
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("phase.trace")
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	st := h.Stat()
	if st.Count != 2 || st.MinNS != int64(10*time.Millisecond) ||
		st.MaxNS != int64(30*time.Millisecond) || st.MeanNS != int64(20*time.Millisecond) {
		t.Errorf("stat = %+v", st)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(time.Second)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

func TestSnapshotExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("debugger.oracle.queries").Add(3)
	r.Gauge("exectree.nodes").Set(12)
	r.Histogram("phase.debug").Observe(time.Millisecond)
	s := r.Snapshot()

	var text strings.Builder
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"debugger.oracle.queries  3", "exectree.nodes", "phase.debug", "count=1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text snapshot missing %q:\n%s", want, text.String())
		}
	}

	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counters["debugger.oracle.queries"] != 3 || decoded.Gauges["exectree.nodes"] != 12 {
		t.Errorf("decoded = %+v", decoded)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run under -race this validates the concurrent-safety claim.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter("per.worker").Add(1)
				r.Gauge("high.water").SetMax(int64(id*iters + i))
				r.Histogram("lat").Observe(time.Duration(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*iters {
		t.Errorf("shared.counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat").Stat().Count; got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}
