package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Error("Counter is not idempotent per name")
	}
	g := r.Gauge("depth.max")
	g.Set(3)
	g.SetMax(7)
	g.SetMax(2) // lower: kept at 7
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	g.Add(-2)
	g.Add(1)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge after Add = %d, want 6", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("phase.trace")
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	st := h.Stat()
	if st.Count != 2 || st.MinNS != int64(10*time.Millisecond) ||
		st.MaxNS != int64(30*time.Millisecond) || st.MeanNS != int64(20*time.Millisecond) {
		t.Errorf("stat = %+v", st)
	}
	if len(st.Buckets) == 0 {
		t.Error("no buckets recorded")
	}
}

// TestHistogramPercentiles checks the log-bucket quantile estimate: a
// heavily skewed distribution must place p50 near the bulk and p99 near
// the tail, within the factor-of-two bucket resolution, and always
// inside [min, max].
func TestHistogramPercentiles(t *testing.T) {
	h := new(Histogram)
	for i := 0; i < 98; i++ {
		h.Observe(1 * time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)
	h.Observe(200 * time.Millisecond)
	st := h.Stat()
	if st.P50NS < int64(500*time.Microsecond) || st.P50NS > int64(2*time.Millisecond) {
		t.Errorf("p50 = %s, want ~1ms", time.Duration(st.P50NS))
	}
	if st.P99NS < int64(50*time.Millisecond) {
		t.Errorf("p99 = %s, want in the tail (>=50ms)", time.Duration(st.P99NS))
	}
	for _, p := range []int64{st.P50NS, st.P95NS, st.P99NS} {
		if p < st.MinNS || p > st.MaxNS {
			t.Errorf("percentile %d outside [min=%d, max=%d]", p, st.MinNS, st.MaxNS)
		}
	}
	if st.P50NS > st.P95NS || st.P95NS > st.P99NS {
		t.Errorf("percentiles not monotone: p50=%d p95=%d p99=%d", st.P50NS, st.P95NS, st.P99NS)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Gauge("y").Add(2)
	r.Histogram("z").Observe(time.Second)
	r.CounterVec("cv", "k").With("v").Inc()
	r.GaugeVec("gv", "k").With("v").Set(2)
	r.HistogramVec("hv", "k").With("v").Observe(time.Second)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

// TestNilInstrumentsAreSafe covers the nil-receiver no-op contract of
// every instrument entry point.
func TestNilInstrumentsAreSafe(t *testing.T) {
	(*Counter)(nil).Inc()
	(*Counter)(nil).Add(3)
	if (*Counter)(nil).Value() != 0 {
		t.Error("nil counter value != 0")
	}
	(*Gauge)(nil).Set(1)
	(*Gauge)(nil).Add(1)
	(*Gauge)(nil).SetMax(1)
	if (*Gauge)(nil).Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	(*Histogram)(nil).Observe(time.Second)
	if (*Histogram)(nil).Stat().Count != 0 {
		t.Error("nil histogram stat not empty")
	}
	(*CounterVec)(nil).With("a").Inc()
	(*GaugeVec)(nil).With("a").Set(1)
	(*HistogramVec)(nil).With("a").Observe(time.Second)
	(*ReportRecorder)(nil).JobStart()
	(*ReportRecorder)(nil).JobDone("x", time.Second)
	(*ReportRecorder)(nil).Count("x", 1)
	(*ReportRecorder)(nil).Finish(4)
	if (*ReportRecorder)(nil).StatusCount("x") != 0 || (*ReportRecorder)(nil).DoneCount() != 0 {
		t.Error("nil recorder counts != 0")
	}
	(*Heartbeat)(nil).Stop()
	if (*OpsServer)(nil).Addr() != "" {
		t.Error("nil ops server addr != \"\"")
	}
	if err := (*OpsServer)(nil).Close(); err != nil {
		t.Errorf("nil ops server close: %v", err)
	}
}

func TestVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("campaign.outcomes", "status")
	v.With("killed").Inc()
	v.With("killed").Add(2)
	v.With("survived").Inc()
	if got := v.With("killed").Value(); got != 3 {
		t.Errorf("killed = %d, want 3", got)
	}
	if r.CounterVec("campaign.outcomes", "status") != v {
		t.Error("CounterVec is not idempotent per name")
	}
	// Children are ordinary registry counters under the flattened name.
	if got := r.Counter("campaign.outcomes{status=killed}").Value(); got != 3 {
		t.Errorf("flattened child = %d, want 3", got)
	}
	s := r.Snapshot()
	if s.Counters["campaign.outcomes{status=survived}"] != 1 {
		t.Errorf("snapshot missing labeled series: %+v", s.Counters)
	}

	g := r.GaugeVec("pool.size", "pool")
	g.With("campaign").Set(8)
	if s := r.Snapshot(); s.Gauges["pool.size{pool=campaign}"] != 8 {
		t.Errorf("gauge vec snapshot: %+v", s.Gauges)
	}
	h := r.HistogramVec("latency", "op")
	h.With("parse").Observe(time.Millisecond)
	if s := r.Snapshot(); s.Histograms["latency{op=parse}"].Count != 1 {
		t.Errorf("hist vec snapshot: %+v", s.Histograms)
	}
}

func TestSeriesNameRoundTrip(t *testing.T) {
	series := seriesName("a.b", []string{"k1", "k2"}, []string{"v1", "v2"})
	if series != "a.b{k1=v1,k2=v2}" {
		t.Fatalf("seriesName = %q", series)
	}
	name, keys, vals := splitSeries(series)
	if name != "a.b" || len(keys) != 2 || keys[0] != "k1" || vals[1] != "v2" {
		t.Errorf("splitSeries = %q %v %v", name, keys, vals)
	}
	if n, k, v := splitSeries("plain.name"); n != "plain.name" || k != nil || v != nil {
		t.Errorf("splitSeries(plain) = %q %v %v", n, k, v)
	}
}

func TestSnapshotExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("debugger.oracle.queries").Add(3)
	r.Gauge("exectree.nodes").Set(12)
	r.Histogram("phase.debug").Observe(time.Millisecond)
	s := r.Snapshot()

	var text strings.Builder
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"debugger.oracle.queries  3", "exectree.nodes", "phase.debug", "count=1", "p50="} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text snapshot missing %q:\n%s", want, text.String())
		}
	}

	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counters["debugger.oracle.queries"] != 3 || decoded.Gauges["exectree.nodes"] != 12 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.done").Add(7)
	r.CounterVec("campaign.outcomes", "status").With("killed").Add(4)
	r.Gauge("campaign.inflight").Set(2)
	r.Histogram("phase.parse").Observe(2 * time.Millisecond)
	r.Histogram("phase.parse").Observe(4 * time.Millisecond)

	var buf strings.Builder
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE campaign_done counter",
		"campaign_done 7",
		`campaign_outcomes{status="killed"} 4`,
		"# TYPE campaign_inflight gauge",
		"campaign_inflight 2",
		"# TYPE phase_parse summary",
		`phase_parse{quantile="0.5"}`,
		`phase_parse{quantile="0.99"}`,
		"phase_parse_sum 0.006",
		"phase_parse_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with many series.
	if strings.Count(out, "# TYPE campaign_outcomes") != 1 {
		t.Errorf("duplicated TYPE lines:\n%s", out)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// counters, gauges, vec children and histograms plus snapshots in
// flight; run under -race this validates the concurrent-safety claim.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 500
	statuses := []string{"killed", "survived", "timeout"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			vec := r.CounterVec("outcomes", "status")
			hv := r.HistogramVec("lat.by", "op")
			for i := 0; i < iters; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter("per.worker").Add(1)
				r.Gauge("high.water").SetMax(int64(id*iters + i))
				r.Gauge("inflight").Add(1)
				r.Histogram("lat").Observe(time.Duration(i))
				vec.With(statuses[i%len(statuses)]).Inc()
				hv.With(statuses[i%len(statuses)]).Observe(time.Duration(i))
				r.Gauge("inflight").Add(-1)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*iters {
		t.Errorf("shared.counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat").Stat().Count; got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	var total int64
	for _, st := range statuses {
		total += r.CounterVec("outcomes", "status").With(st).Value()
	}
	if total != workers*iters {
		t.Errorf("vec total = %d, want %d", total, workers*iters)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Errorf("inflight = %d, want 0", got)
	}
}
