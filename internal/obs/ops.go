package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// OpsServer is the embeddable live-operations endpoint: one HTTP
// listener serving the metrics registry in Prometheus text exposition
// and JSON, a health probe, expvar, and the pprof profiling handlers.
// Every long-running or campaign CLI mounts it behind a single
// -ops :addr flag; gadt-serve mounts the same surface on its API
// listener via RegisterOps.
type OpsServer struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// OpsPaths lists the routes RegisterOps mounts, for index pages.
var OpsPaths = []string{"/metrics", "/metrics.json", "/healthz", "/debug/vars", "/debug/pprof/"}

// RegisterOps mounts the ops surface on an existing mux:
//
//	/metrics        Prometheus text exposition (counters, gauges,
//	                p50/p95/p99 summaries for every duration histogram)
//	/metrics.json   the same snapshot as indented JSON
//	/healthz        liveness probe ("ok")
//	/debug/vars     expvar
//	/debug/pprof/   pprof index, profile, heap, trace, symbol, cmdline
//
// The registry may be nil (the endpoint then serves empty snapshots).
// Servers with their own listener (gadt-serve) call this to share one
// port between the API and operations; ServeOps uses it for the
// standalone -ops endpoint.
func RegisterOps(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.Snapshot().WriteJSON(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeOps listens on addr (":0" picks a free port) and serves the
// RegisterOps surface in a background goroutine. Close stops the
// listener.
func ServeOps(addr string, reg *Registry) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: %w", err)
	}
	s := &OpsServer{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	RegisterOps(mux, reg)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

func (s *OpsServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "gadt ops endpoint")
	for _, p := range OpsPaths {
		fmt.Fprintln(w, "  "+p)
	}
}

// Addr returns the resolved listen address (host:port, the port bound
// even when :0 was requested). Safe on nil.
func (s *OpsServer) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers. Safe on nil.
func (s *OpsServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
