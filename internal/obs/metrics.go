// Package obs is the dependency-free observability layer shared by all
// three GADT phases: a concurrency-safe metrics registry (counters,
// gauges, log-bucketed duration histograms with percentiles, and
// labeled Vec variants of all three), a hierarchical span tracer with
// pluggable event sinks (trace.go) including a Chrome trace-event
// exporter loadable in Perfetto, an embeddable ops HTTP endpoint
// (ops.go), and a heartbeat progress reporter (heartbeat.go).
//
// Every entry point is nil-safe: methods on a nil *Registry, *Tracer,
// *Lane, *Span, *CounterVec (etc.), *Heartbeat or *OpsServer degrade to
// no-ops, so instrumented code never guards call sites — passing no
// registry costs one scratch allocation per lookup and nothing per
// increment. Hot paths (the interpreter's statement loop, campaign
// workers) resolve their instruments once and increment afterwards;
// Vec.With returns a cached child handle for the same reason.
//
// Metric names are dotted paths; variable dimensions are labels, e.g.
// campaign.outcomes{status=killed}. The full name inventory lives in
// README.md's Observability section.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d (negative deltas are ignored; counters only go up).
func (c *Counter) Add(d int64) {
	if c != nil && d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (either sign); the in-flight job counts of
// the campaign pools use it as an up-down counter.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax stores v only when it exceeds the current value (high-water
// marks such as activation depth).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBucketCount is the number of log2 duration buckets: bucket i
// counts observations in [2^(i-1), 2^i) nanoseconds (bucket 0 holds
// non-positive durations), so bucket 35 tops out around 34 seconds and
// the last bucket is a catch-all beyond that. Log bucketing keeps
// Observe O(1) and allocation-free while still supporting percentile
// estimation within a factor-of-two bucket, interpolated and clamped to
// the exact observed min/max.
const histBucketCount = 36

// Histogram accumulates durations: count / sum / min / max plus log2
// buckets for percentile estimation.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [histBucketCount]int64
}

func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i >= histBucketCount {
		i = histBucketCount - 1
	}
	return i
}

// Observe records one duration. Safe on nil.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketIndex(d)]++
}

// Stat returns the accumulated statistics, percentiles included.
func (h *Histogram) Stat() HistStat {
	if h == nil {
		return HistStat{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistStat{Count: h.count, SumNS: int64(h.sum), MinNS: int64(h.min), MaxNS: int64(h.max)}
	if h.count > 0 {
		s.MeanNS = int64(h.sum) / h.count
		s.P50NS = h.quantileLocked(0.50)
		s.P95NS = h.quantileLocked(0.95)
		s.P99NS = h.quantileLocked(0.99)
	}
	for i, c := range h.buckets {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperNS: int64(1) << uint(i), Count: c})
		}
	}
	return s
}

// quantileLocked estimates the q-quantile from the log buckets by
// linear interpolation inside the bucket the target rank falls into,
// clamped to the observed min/max. Callers hold h.mu.
func (h *Histogram) quantileLocked(q float64) int64 {
	target := q * float64(h.count)
	cum := int64(0)
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << uint(i-1)
			}
			hi := int64(1) << uint(i)
			frac := (target - float64(cum)) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if v < int64(h.min) {
				v = int64(h.min)
			}
			if v > int64(h.max) {
				v = int64(h.max)
			}
			return v
		}
		cum += c
	}
	return int64(h.max)
}

// HistBucket is one non-empty log2 bucket of a histogram snapshot:
// Count observations at most UpperNS nanoseconds (and above the
// previous bucket's bound).
type HistBucket struct {
	UpperNS int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// HistStat is an exported histogram snapshot (nanoseconds).
type HistStat struct {
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	MinNS   int64        `json:"min_ns"`
	MaxNS   int64        `json:"max_ns"`
	MeanNS  int64        `json:"mean_ns"`
	P50NS   int64        `json:"p50_ns"`
	P95NS   int64        `json:"p95_ns"`
	P99NS   int64        `json:"p99_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Registry holds named metrics. The zero value is NOT ready; use
// NewRegistry. All methods are safe for concurrent use, and safe on a
// nil receiver (they return live but unregistered scratch instruments).
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		histVecs:    make(map[string]*HistogramVec),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a consistent copy of every registered metric. Labeled
// series appear under their flattened name, e.g.
// campaign.outcomes{status=killed}.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]HistStat `json:"histograms"`
}

// Snapshot copies the registry's current state. Nil registries snapshot
// empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistStat{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Stat()
	}
	return s
}

// WriteText renders the snapshot as an aligned table, one metric per
// line, sorted by name within each kind.
func (s Snapshot) WriteText(w io.Writer) error {
	width := 0
	for _, m := range []int{maxKeyLen(s.Counters), maxKeyLen(s.Gauges)} {
		if m > width {
			width = m
		}
	}
	for n := range s.Histograms {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-*s  %d\n", width, n, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-*s  %d\n", width, n, s.Gauges[n]); err != nil {
			return err
		}
	}
	var hnames []string
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "%-*s  count=%d sum=%s mean=%s p50=%s p95=%s p99=%s min=%s max=%s\n",
			width, n, h.Count,
			time.Duration(h.SumNS), time.Duration(h.MeanNS),
			time.Duration(h.P50NS), time.Duration(h.P95NS), time.Duration(h.P99NS),
			time.Duration(h.MinNS), time.Duration(h.MaxNS)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func maxKeyLen(m map[string]int64) int {
	max := 0
	for n := range m {
		if len(n) > max {
			max = len(n)
		}
	}
	return max
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for n := range m {
		keys = append(keys, n)
	}
	sort.Strings(keys)
	return keys
}
