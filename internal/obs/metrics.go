// Package obs is the dependency-free observability layer shared by all
// three GADT phases: a concurrency-safe metrics registry (counters,
// gauges, duration histograms) with text and JSON snapshot export, and a
// span-style phase tracer with pluggable event sinks (see trace.go).
//
// Every entry point is nil-safe: methods on a nil *Registry or a nil
// *Tracer degrade to no-ops, so instrumented code never guards call
// sites — passing no registry costs one scratch allocation per lookup
// and nothing per increment. Hot paths (the interpreter's statement
// loop) resolve their instruments once and increment afterwards.
//
// Metric names are dotted paths; variable dimensions append one label
// segment per axis, e.g. debugger.oracle.queries.verdict.no. The full
// name inventory lives in README.md's Observability section.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (negative deltas are ignored; counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax stores v only when it exceeds the current value (high-water
// marks such as activation depth).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates durations (count / sum / min / max).
type Histogram struct {
	mu    sync.Mutex
	count int64
	sum   time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

// Stat returns the accumulated statistics.
func (h *Histogram) Stat() HistStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistStat{Count: h.count, SumNS: int64(h.sum), MinNS: int64(h.min), MaxNS: int64(h.max)}
	if h.count > 0 {
		s.MeanNS = int64(h.sum) / h.count
	}
	return s
}

// HistStat is an exported histogram snapshot (nanoseconds).
type HistStat struct {
	Count  int64 `json:"count"`
	SumNS  int64 `json:"sum_ns"`
	MinNS  int64 `json:"min_ns"`
	MaxNS  int64 `json:"max_ns"`
	MeanNS int64 `json:"mean_ns"`
}

// Registry holds named metrics. The zero value is NOT ready; use
// NewRegistry. All methods are safe for concurrent use, and safe on a
// nil receiver (they return live but unregistered scratch instruments).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a consistent copy of every registered metric.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]HistStat `json:"histograms"`
}

// Snapshot copies the registry's current state. Nil registries snapshot
// empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistStat{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Stat()
	}
	return s
}

// WriteText renders the snapshot as an aligned table, one metric per
// line, sorted by name within each kind.
func (s Snapshot) WriteText(w io.Writer) error {
	width := 0
	for _, m := range []int{maxKeyLen(s.Counters), maxKeyLen(s.Gauges)} {
		if m > width {
			width = m
		}
	}
	for n := range s.Histograms {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-*s  %d\n", width, n, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-*s  %d\n", width, n, s.Gauges[n]); err != nil {
			return err
		}
	}
	var hnames []string
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "%-*s  count=%d sum=%s mean=%s min=%s max=%s\n",
			width, n, h.Count,
			time.Duration(h.SumNS), time.Duration(h.MeanNS),
			time.Duration(h.MinNS), time.Duration(h.MaxNS)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func maxKeyLen(m map[string]int64) int {
	max := 0
	for n := range m {
		if len(n) > max {
			max = len(n)
		}
	}
	return max
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for n := range m {
		keys = append(keys, n)
	}
	sort.Strings(keys)
	return keys
}
