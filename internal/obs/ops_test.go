package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestServeOps(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("campaign.done").Add(3)
	reg.CounterVec("campaign.outcomes", "status").With("killed").Add(2)
	reg.Histogram("phase.debug").Observe(5 * time.Millisecond)

	srv, err := ServeOps("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("addr = %q, want resolved port", addr)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"campaign_done 3",
		`campaign_outcomes{status="killed"} 2`,
		`phase_debug{quantile="0.5"}`,
		`phase_debug{quantile="0.95"}`,
		`phase_debug{quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	code, body = get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if snap.Counters["campaign.done"] != 3 {
		t.Errorf("json snapshot = %+v", snap)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Errorf("/debug/vars = %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope = %d, want 404", code)
	}
}

func TestServeOpsNilRegistry(t *testing.T) {
	srv, err := ServeOps("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/metrics on nil registry = %d", resp.StatusCode)
	}
}

// TestRegisterOps mounts the ops surface on a caller-owned mux — the
// way gadt-serve shares one listener between API and operations — and
// checks every advertised path answers.
func TestRegisterOps(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.something").Inc()
	mux := http.NewServeMux()
	RegisterOps(mux, reg)
	for _, path := range OpsPaths {
		req, _ := http.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		mux.ServeHTTP(rw, req)
		if rw.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rw.Code)
		}
	}
	req, _ := http.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, req)
	if !strings.Contains(rw.Body.String(), "serve_something 1") {
		t.Errorf("/metrics missing counter:\n%s", rw.Body.String())
	}
}
