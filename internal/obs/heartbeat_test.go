package obs

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncBuffer serializes writes so the heartbeat goroutine and the test
// can share it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestHeartbeat(t *testing.T) {
	var out syncBuffer
	var done atomic.Int64
	h := StartHeartbeat(HeartbeatConfig{
		W:        &out,
		Interval: 5 * time.Millisecond,
		Label:    "pmut",
		Total:    10,
		Done:     done.Load,
		Extra:    func() string { return "killed=2" },
	})
	done.Store(4)
	time.Sleep(30 * time.Millisecond)
	h.Stop()
	h.Stop() // idempotent

	got := out.String()
	if !strings.Contains(got, "pmut: 4/10 (40.0%)") {
		t.Errorf("heartbeat output missing progress line:\n%s", got)
	}
	if !strings.Contains(got, "killed=2") {
		t.Errorf("heartbeat output missing extra status:\n%s", got)
	}
	if !strings.Contains(got, "/s") {
		t.Errorf("heartbeat output missing rate:\n%s", got)
	}
	// Final line (after Stop) reports elapsed time instead of an ETA.
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if last := lines[len(lines)-1]; !strings.Contains(last, " in ") {
		t.Errorf("final line missing elapsed: %q", last)
	}
}

func TestHeartbeatUnknownTotal(t *testing.T) {
	var out syncBuffer
	h := StartHeartbeat(HeartbeatConfig{
		W:        &out,
		Interval: time.Hour, // only the final line fires
		Label:    "pdiff",
		Done:     func() int64 { return 7 },
	})
	h.Stop()
	got := out.String()
	if !strings.Contains(got, "pdiff: 7 ") {
		t.Errorf("output = %q", got)
	}
	if strings.Contains(got, "%") || strings.Contains(got, "eta") {
		t.Errorf("unknown-total heartbeat must not show %% or eta: %q", got)
	}
}

func TestReportRecorder(t *testing.T) {
	reg := NewRegistry()
	rec := NewReportRecorder(reg, "campaign")
	rec.JobStart()
	rec.JobStart()
	if got := reg.Gauge("campaign.inflight").Value(); got != 2 {
		t.Errorf("inflight = %d, want 2", got)
	}
	rec.JobDone("killed", time.Millisecond)
	rec.JobDone("survived", 2*time.Millisecond)
	rec.Count("equivalent", 3)
	rec.Finish(4)

	if got := reg.Gauge("campaign.inflight").Value(); got != 0 {
		t.Errorf("inflight after done = %d, want 0", got)
	}
	if got := rec.DoneCount(); got != 2 {
		t.Errorf("done = %d, want 2", got)
	}
	if got := rec.StatusCount("killed"); got != 1 {
		t.Errorf("killed = %d, want 1", got)
	}
	if got := rec.StatusCount("equivalent"); got != 3 {
		t.Errorf("equivalent = %d, want 3", got)
	}
	s := reg.Snapshot()
	if s.Counters["campaign.outcomes{status=survived}"] != 1 {
		t.Errorf("outcomes vec missing: %+v", s.Counters)
	}
	if s.Gauges["campaign.workers"] != 4 {
		t.Errorf("workers = %d, want 4", s.Gauges["campaign.workers"])
	}
	if s.Histograms["campaign.eval"].Count != 2 {
		t.Errorf("eval histogram = %+v", s.Histograms["campaign.eval"])
	}
}

func TestReportRecorderNilRegistry(t *testing.T) {
	rec := NewReportRecorder(nil, "x")
	rec.JobStart()
	rec.JobDone("killed", time.Second)
	rec.Count("equivalent", 2)
	rec.Finish(1)
	if rec.DoneCount() != 1 { // scratch instruments still count locally
		t.Errorf("done = %d", rec.DoneCount())
	}
}

// TestReportRecorderConcurrency runs a worker-pool shape under -race.
func TestReportRecorderConcurrency(t *testing.T) {
	reg := NewRegistry()
	rec := NewReportRecorder(reg, "pool")
	const workers, jobs = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobs; i++ {
				rec.JobStart()
				status := "killed"
				if i%3 == 0 {
					status = "survived"
				}
				rec.JobDone(status, time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got := rec.DoneCount(); got != workers*jobs {
		t.Errorf("done = %d, want %d", got, workers*jobs)
	}
	if got := reg.Gauge("pool.inflight").Value(); got != 0 {
		t.Errorf("inflight = %d, want 0", got)
	}
}
