package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceEvent is one entry in the phase-trace event stream. Begin events
// carry no duration; end events carry the span's wall-clock duration.
// Timestamps are microseconds since the tracer was created, so traces of
// the same binary are comparable without absolute clocks.
type TraceEvent struct {
	Name   string `json:"name"`
	Phase  string `json:"ph"` // "B" (begin) or "E" (end)
	TimeUS int64  `json:"ts_us"`
	DurUS  int64  `json:"dur_us,omitempty"`
}

// TraceSink consumes trace events. Emit may be called from multiple
// goroutines; the Tracer serializes calls.
type TraceSink interface {
	Emit(e TraceEvent)
}

// Discard is a TraceSink that drops every event.
var Discard TraceSink = discardSink{}

type discardSink struct{}

func (discardSink) Emit(TraceEvent) {}

// TextSink renders events as human-readable lines.
type TextSink struct{ W io.Writer }

// Emit implements TraceSink.
func (s TextSink) Emit(e TraceEvent) {
	if e.Phase == "E" {
		fmt.Fprintf(s.W, "[%9.3fms] end   %-12s (%s)\n",
			float64(e.TimeUS)/1e3, e.Name, time.Duration(e.DurUS)*time.Microsecond)
		return
	}
	fmt.Fprintf(s.W, "[%9.3fms] begin %s\n", float64(e.TimeUS)/1e3, e.Name)
}

// JSONLSink renders events as one JSON object per line.
type JSONLSink struct{ W io.Writer }

// Emit implements TraceSink.
func (s JSONLSink) Emit(e TraceEvent) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.W.Write(append(b, '\n'))
}

// Tracer emits span begin/end events to a sink and, when Metrics is
// set, records each span's duration in the histogram phase.<name>.
// A nil *Tracer is valid and free: Start returns a nil Span whose End
// is a no-op.
type Tracer struct {
	mu      sync.Mutex
	sink    TraceSink
	start   time.Time
	Metrics *Registry // optional; span durations land in phase.<name>
}

// NewTracer returns a tracer emitting to sink (nil means Discard).
func NewTracer(sink TraceSink) *Tracer {
	if sink == nil {
		sink = Discard
	}
	return &Tracer{sink: sink, start: time.Now()}
}

func (t *Tracer) emit(e TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink.Emit(e)
}

// Span is one open interval; close it with End.
type Span struct {
	t     *Tracer
	name  string
	begin time.Time
}

// Start opens a span and emits its begin event.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.emit(TraceEvent{Name: name, Phase: "B", TimeUS: now.Sub(t.start).Microseconds()})
	return &Span{t: t, name: name, begin: now}
}

// End closes the span, emits its end event, and records the duration in
// the tracer's metrics registry (when one is attached). Safe on nil.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	now := time.Now()
	dur := now.Sub(s.begin)
	s.t.emit(TraceEvent{
		Name:   s.name,
		Phase:  "E",
		TimeUS: now.Sub(s.t.start).Microseconds(),
		DurUS:  dur.Microseconds(),
	})
	s.t.Metrics.Histogram("phase." + s.name).Observe(dur)
}
