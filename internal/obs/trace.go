package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one entry in the trace event stream. Begin events carry
// no duration; end events carry the span's wall-clock duration and the
// span's key/value attributes. Metadata events (Phase "M") name lanes.
// Timestamps are microseconds since the tracer was created, so traces
// of the same binary are comparable without absolute clocks.
type TraceEvent struct {
	Name   string            `json:"name"`
	Phase  string            `json:"ph"` // "B" (begin), "E" (end), "M" (metadata)
	TimeUS int64             `json:"ts_us"`
	DurUS  int64             `json:"dur_us,omitempty"`
	ID     int64             `json:"id,omitempty"`     // span ID (unique per tracer)
	Parent int64             `json:"parent,omitempty"` // enclosing span's ID (0 = root)
	TID    int               `json:"tid"`              // lane: 0 = main, workers get their own
	Args   map[string]string `json:"args,omitempty"`
}

// TraceSink consumes trace events. Emit may be called from multiple
// goroutines; the Tracer serializes calls. Sinks that buffer or can
// fail additionally implement FlushSink.
type TraceSink interface {
	Emit(e TraceEvent)
}

// FlushSink is implemented by sinks that buffer output: Flush drains
// the buffer and reports the first write or encode error encountered
// since the sink was created, so truncated trace files fail loudly at
// exit instead of passing unnoticed. Setup's close function calls it.
type FlushSink interface {
	TraceSink
	Flush() error
}

// Discard is a TraceSink that drops every event.
var Discard TraceSink = discardSink{}

type discardSink struct{}

func (discardSink) Emit(TraceEvent) {}

// sinkCore is the shared buffered-writer/first-error state of the
// concrete sinks.
type sinkCore struct {
	w   *bufio.Writer
	err error
}

func (c *sinkCore) setErr(err error) {
	if c.err == nil && err != nil {
		c.err = err
	}
}

func (c *sinkCore) flush() error {
	if err := c.w.Flush(); err != nil {
		c.setErr(err)
	}
	return c.err
}

// TextSink renders events as human-readable lines. Output is buffered;
// call Flush before discarding the sink.
type TextSink struct{ sinkCore }

// NewTextSink returns a buffered text sink over w.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{sinkCore{w: bufio.NewWriter(w)}}
}

// Emit implements TraceSink.
func (s *TextSink) Emit(e TraceEvent) {
	var err error
	switch e.Phase {
	case "E":
		_, err = fmt.Fprintf(s.w, "[%9.3fms] [lane %d] end   %-12s (%s)%s\n",
			float64(e.TimeUS)/1e3, e.TID, e.Name,
			time.Duration(e.DurUS)*time.Microsecond, formatArgs(e.Args))
	case "M":
		_, err = fmt.Fprintf(s.w, "[%9.3fms] [lane %d] =%s=%s\n",
			float64(e.TimeUS)/1e3, e.TID, e.Name, formatArgs(e.Args))
	default:
		_, err = fmt.Fprintf(s.w, "[%9.3fms] [lane %d] begin %s\n",
			float64(e.TimeUS)/1e3, e.TID, e.Name)
	}
	s.setErr(err)
}

// Flush implements FlushSink.
func (s *TextSink) Flush() error { return s.flush() }

func formatArgs(args map[string]string) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := " {"
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += k + "=" + args[k]
	}
	return out + "}"
}

// JSONLSink renders events as one JSON object per line (the raw
// TraceEvent schema). Output is buffered; call Flush before discarding
// the sink.
type JSONLSink struct{ sinkCore }

// NewJSONLSink returns a buffered JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{sinkCore{w: bufio.NewWriter(w)}}
}

// Emit implements TraceSink.
func (s *JSONLSink) Emit(e TraceEvent) {
	b, err := json.Marshal(e)
	if err != nil {
		s.setErr(err)
		return
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.setErr(err)
	}
}

// Flush implements FlushSink.
func (s *JSONLSink) Flush() error { return s.flush() }

// chromeEvent is the Chrome trace-event (Trace Event Format) shape of
// one TraceEvent: what Perfetto and chrome://tracing load directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeSink renders events as a Chrome trace-event JSON array; the
// resulting file loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing, with one horizontal lane per tracer Lane and nested
// spans stacked by begin/end pairing. Output is buffered and the array
// is terminated by Flush — an unflushed file is invalid JSON by
// construction, so a crashed run cannot masquerade as a complete trace.
type ChromeSink struct {
	sinkCore
	n int // events emitted (for comma placement)
}

// NewChromeSink returns a buffered Chrome trace sink over w.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{sinkCore: sinkCore{w: bufio.NewWriter(w)}}
	if _, err := s.w.WriteString("[\n"); err != nil {
		s.setErr(err)
	}
	return s
}

// Emit implements TraceSink.
func (s *ChromeSink) Emit(e TraceEvent) {
	ce := chromeEvent{Name: e.Name, Cat: "gadt", Ph: e.Phase, TS: e.TimeUS, PID: 1, TID: e.TID, Args: e.Args}
	if e.Phase == "M" {
		ce.Cat = "__metadata"
	}
	b, err := json.Marshal(ce)
	if err != nil {
		s.setErr(err)
		return
	}
	if s.n > 0 {
		if _, err := s.w.WriteString(",\n"); err != nil {
			s.setErr(err)
		}
	}
	s.n++
	if _, err := s.w.Write(b); err != nil {
		s.setErr(err)
	}
}

// Flush terminates the JSON array and drains the buffer, reporting the
// first error seen by any write.
func (s *ChromeSink) Flush() error {
	if _, err := s.w.WriteString("\n]\n"); err != nil {
		s.setErr(err)
	}
	return s.flush()
}

// Tracer emits span begin/end events to a sink and, when Metrics is
// set, records each span's duration in the histogram phase.<name>.
// Spans nest: within one Lane, a span started while another is open
// becomes its child (IDs and parent links land in the events), so a
// trace of a debugging session shows parse/sem/transform/trace/debug
// stacked under the session root. Concurrent pools give each worker its
// own Lane, which renders as one horizontal track per worker in
// Perfetto. A nil *Tracer is valid and free: Start returns a nil Span
// whose methods are no-ops.
type Tracer struct {
	mu      sync.Mutex
	sink    TraceSink
	start   time.Time
	nextID  atomic.Int64
	nextTID int
	main    *Lane
	Metrics *Registry // optional; span durations land in phase.<name>
}

// NewTracer returns a tracer emitting to sink (nil means Discard).
func NewTracer(sink TraceSink) *Tracer {
	if sink == nil {
		sink = Discard
	}
	t := &Tracer{sink: sink, start: time.Now()}
	t.main = &Lane{t: t, tid: 0}
	t.emit(TraceEvent{Name: "thread_name", Phase: "M", TID: 0, Args: map[string]string{"name": "main"}})
	return t
}

func (t *Tracer) emit(e TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink.Emit(e)
}

// Lane allocates a new trace lane (its own track in Perfetto) named for
// the worker or subsystem that owns it. The lane must be used from one
// goroutine at a time; concurrent pools create one lane per worker.
// Safe on a nil tracer (returns a nil lane whose Start is a no-op).
func (t *Tracer) Lane(name string) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextTID++
	tid := t.nextTID
	t.mu.Unlock()
	t.emit(TraceEvent{
		Name:   "thread_name",
		Phase:  "M",
		TimeUS: time.Since(t.start).Microseconds(),
		TID:    tid,
		Args:   map[string]string{"name": name},
	})
	return &Lane{t: t, tid: tid}
}

// Lane is one track of spans; spans started on a lane nest under the
// lane's currently open span.
type Lane struct {
	t   *Tracer
	tid int
	cur *Span // innermost open span; guarded by t.mu
}

// Start opens a span on this lane, nested under the lane's innermost
// open span. Safe on nil.
func (l *Lane) Start(name string) *Span {
	if l == nil || l.t == nil {
		return nil
	}
	t := l.t
	now := time.Now()
	s := &Span{t: t, lane: l, name: name, begin: now, id: t.nextID.Add(1)}
	t.mu.Lock()
	s.parent = l.cur
	if s.parent != nil {
		s.parentID = s.parent.id
	}
	l.cur = s
	e := TraceEvent{
		Name:   name,
		Phase:  "B",
		TimeUS: now.Sub(t.start).Microseconds(),
		ID:     s.id,
		Parent: s.parentID,
		TID:    l.tid,
	}
	t.sink.Emit(e)
	t.mu.Unlock()
	return s
}

// Start opens a span on the tracer's main lane. Safe on nil.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.main.Start(name)
}

// Span is one open interval; close it with End.
type Span struct {
	t        *Tracer
	lane     *Lane
	parent   *Span
	parentID int64
	id       int64
	name     string
	begin    time.Time
	args     map[string]string
}

// SetAttr attaches a key/value attribute to the span; attributes are
// emitted with the end event (and shown in Perfetto's detail pane).
// Safe on nil. Call from the goroutine that owns the span's lane.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]string, 4)
	}
	s.args[key] = value
}

// End closes the span, emits its end event (attributes included), and
// records the duration in the tracer's metrics registry under
// phase.<name>. Safe on nil.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	now := time.Now()
	dur := now.Sub(s.begin)
	t.mu.Lock()
	// Restore the lane's open-span chain; out-of-order ends (a parent
	// ended before its child) just unwind to this span's parent.
	if s.lane != nil {
		s.lane.cur = s.parent
	}
	t.sink.Emit(TraceEvent{
		Name:   s.name,
		Phase:  "E",
		TimeUS: now.Sub(t.start).Microseconds(),
		DurUS:  dur.Microseconds(),
		ID:     s.id,
		Parent: s.parentID,
		TID:    laneTID(s.lane),
		Args:   s.args,
	})
	t.mu.Unlock()
	t.Metrics.Histogram("phase." + s.name).Observe(dur)
}

func laneTID(l *Lane) int {
	if l == nil {
		return 0
	}
	return l.tid
}
