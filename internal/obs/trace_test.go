package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerJSONL(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(JSONLSink{W: &buf})
	tr.Metrics = NewRegistry()

	sp := tr.Start("parse")
	sp.End()
	tr.Start("debug").End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d events, want 4 (2 begin + 2 end):\n%s", len(lines), buf.String())
	}
	var evs []TraceEvent
	for _, l := range lines {
		var e TraceEvent
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", l, err)
		}
		evs = append(evs, e)
	}
	if evs[0].Name != "parse" || evs[0].Phase != "B" || evs[1].Phase != "E" {
		t.Errorf("events = %+v", evs)
	}
	// Span durations land in the attached registry as phase histograms.
	s := tr.Metrics.Snapshot()
	if s.Histograms["phase.parse"].Count != 1 || s.Histograms["phase.debug"].Count != 1 {
		t.Errorf("phase histograms missing: %+v", s.Histograms)
	}
}

func TestTracerText(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(TextSink{W: &buf})
	tr.Start("trace").End()
	out := buf.String()
	if !strings.Contains(out, "begin trace") || !strings.Contains(out, "end   trace") {
		t.Errorf("text trace output:\n%s", out)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Start("anything").End() // must not panic
	(*Span)(nil).End()
}
