package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// collectSink records every event for structural assertions.
type collectSink struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (s *collectSink) Emit(e TraceEvent) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func TestTracerSpansAndMetrics(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(sink)
	tr.Metrics = NewRegistry()

	root := tr.Start("session")
	child := tr.Start("parse")
	child.SetAttr("file", "x.pas")
	child.End()
	root.End()

	// metadata(main) + B(session) + B(parse) + E(parse) + E(session)
	if len(sink.events) != 5 {
		t.Fatalf("got %d events, want 5: %+v", len(sink.events), sink.events)
	}
	if sink.events[0].Phase != "M" || sink.events[0].Name != "thread_name" {
		t.Errorf("first event not thread_name metadata: %+v", sink.events[0])
	}
	bSession, bParse, eParse := sink.events[1], sink.events[2], sink.events[3]
	if bSession.Phase != "B" || bSession.Name != "session" || bSession.Parent != 0 {
		t.Errorf("session begin = %+v", bSession)
	}
	if bParse.Parent != bSession.ID {
		t.Errorf("parse not nested under session: parent=%d want=%d", bParse.Parent, bSession.ID)
	}
	if eParse.Phase != "E" || eParse.Args["file"] != "x.pas" {
		t.Errorf("parse end missing attrs: %+v", eParse)
	}
	if got := tr.Metrics.Histogram("phase.parse").Stat().Count; got != 1 {
		t.Errorf("phase.parse count = %d, want 1", got)
	}
	// After both ended, a new span is a root again.
	s2 := tr.Start("debug")
	s2.End()
	if last := sink.events[len(sink.events)-1]; last.Parent != 0 {
		t.Errorf("post-unwind span has parent %d, want 0", last.Parent)
	}
}

func TestTracerLanes(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(sink)
	lane := tr.Lane("worker-1")
	s := lane.Start("mutant")
	s.End()

	var meta []TraceEvent
	for _, e := range sink.events {
		if e.Phase == "M" {
			meta = append(meta, e)
		}
	}
	if len(meta) != 2 || meta[1].Args["name"] != "worker-1" || meta[1].TID == 0 {
		t.Fatalf("lane metadata wrong: %+v", meta)
	}
	for _, e := range sink.events[2:] {
		if e.TID != meta[1].TID {
			t.Errorf("span event on wrong lane: %+v", e)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	s.SetAttr("k", "v")
	s.End()
	lane := tr.Lane("w")
	ls := lane.Start("y")
	ls.End()
	(*Span)(nil).SetAttr("a", "b")
	(*Span)(nil).End()
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	tr.Start("phase").End()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // metadata + B + E
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for _, ln := range lines {
		var e TraceEvent
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTextSink(&buf)
	tr := NewTracer(sink)
	s := tr.Start("trace")
	s.SetAttr("nodes", "12")
	s.End()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"begin trace", "end   trace", "nodes=12"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestChromeSink validates the Perfetto-loadable trace shape: a JSON
// array of events with name/ph/ts/pid/tid, thread_name metadata, and
// nested B/E pairs.
func TestChromeSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	tr := NewTracer(sink)
	lane := tr.Lane("worker-0")
	root := lane.Start("mutant")
	inner := lane.Start("eval")
	inner.End()
	root.End()

	// Before Flush the array is unterminated — invalid JSON by design.
	var pre []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &pre); err == nil {
		t.Error("unflushed chrome trace parsed as JSON; want invalid until Flush")
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// main metadata + worker metadata + B + B + E + E
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6: %v", len(events), events)
	}
	var metaNames []string
	begins, ends := 0, 0
	for _, e := range events {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Errorf("event missing %q: %v", key, e)
			}
		}
		switch e["ph"] {
		case "M":
			if e["name"] == "thread_name" {
				args := e["args"].(map[string]any)
				metaNames = append(metaNames, args["name"].(string))
			}
		case "B":
			begins++
		case "E":
			ends++
		}
	}
	if begins != 2 || ends != 2 {
		t.Errorf("unbalanced B/E: %d/%d", begins, ends)
	}
	want := []string{"main", "worker-0"}
	if len(metaNames) != 2 || metaNames[0] != want[0] || metaNames[1] != want[1] {
		t.Errorf("thread_name lanes = %v, want %v", metaNames, want)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestSinkErrorPropagation is the heart of the silent-swallow fix: a
// failing writer must surface its first error from Flush, for every
// sink flavor.
func TestSinkErrorPropagation(t *testing.T) {
	wantErr := errors.New("disk full")
	sinks := map[string]FlushSink{
		"text":   NewTextSink(&failWriter{n: 4, err: wantErr}),
		"jsonl":  NewJSONLSink(&failWriter{n: 4, err: wantErr}),
		"chrome": NewChromeSink(&failWriter{n: 4, err: wantErr}),
	}
	for name, sink := range sinks {
		tr := NewTracer(sink)
		for i := 0; i < 4096; i++ { // overflow the bufio buffer so writes hit the failWriter
			tr.Start("spanspanspanspanspanspanspanspan").End()
		}
		if err := sink.Flush(); !errors.Is(err, wantErr) {
			t.Errorf("%s sink Flush = %v, want %v", name, err, wantErr)
		}
	}
}

// TestTracerConcurrency exercises concurrent span start/end on separate
// lanes with snapshots in flight; meaningful under -race.
func TestTracerConcurrency(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	tr := NewTracer(sink)
	tr.Metrics = NewRegistry()
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lane := tr.Lane("worker")
			for i := 0; i < iters; i++ {
				s := lane.Start("job")
				inner := lane.Start("step")
				inner.End()
				s.SetAttr("i", "x")
				s.End()
				if i%50 == 0 {
					tr.Metrics.Snapshot()
				}
			}
		}(w)
	}
	// Main lane traffic racing the workers.
	for i := 0; i < iters; i++ {
		tr.Start("tick").End()
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("concurrent chrome trace invalid: %v", err)
	}
	if got := tr.Metrics.Histogram("phase.job").Stat().Count; got != workers*iters {
		t.Errorf("phase.job count = %d, want %d", got, workers*iters)
	}
}

func TestSpanDurationRecorded(t *testing.T) {
	tr := NewTracer(Discard)
	tr.Metrics = NewRegistry()
	s := tr.Start("sleepy")
	time.Sleep(2 * time.Millisecond)
	s.End()
	st := tr.Metrics.Histogram("phase.sleepy").Stat()
	if st.Count != 1 || st.MaxNS < int64(time.Millisecond) {
		t.Errorf("stat = %+v", st)
	}
}
