package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// HeartbeatConfig shapes a periodic progress reporter for long runs.
type HeartbeatConfig struct {
	// W receives one progress line per tick (nil = no lines; gauge-only
	// consumers still get the Done callback polled).
	W io.Writer
	// Interval between ticks (0 = 2s).
	Interval time.Duration
	// Label prefixes every line, e.g. "pmut".
	Label string
	// Total is the expected item count (0 = unknown: no percentage/ETA).
	Total int64
	// Done returns the completed item count so far; called every tick.
	Done func() int64
	// Extra, when non-nil, returns additional status rendered at the end
	// of each line (e.g. "killed=12 survived=3").
	Extra func() string
}

// Heartbeat is a running progress reporter; Stop emits a final line and
// terminates it. A nil *Heartbeat is valid: Stop is a no-op, so callers
// can start one conditionally and defer Stop unconditionally.
type Heartbeat struct {
	cfg   HeartbeatConfig
	start time.Time
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// StartHeartbeat launches the reporter goroutine. Throughput is the
// cumulative rate since start (stable under bursty workers) and the ETA
// extrapolates it over the remaining items.
func StartHeartbeat(cfg HeartbeatConfig) *Heartbeat {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	h := &Heartbeat{cfg: cfg, start: time.Now(), stop: make(chan struct{})}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		tick := time.NewTicker(h.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				h.report(false)
			case <-h.stop:
				return
			}
		}
	}()
	return h
}

// Stop halts the reporter and emits one final progress line. Safe on
// nil and idempotent.
func (h *Heartbeat) Stop() {
	if h == nil {
		return
	}
	h.once.Do(func() {
		close(h.stop)
		h.wg.Wait()
		h.report(true)
	})
}

func (h *Heartbeat) report(final bool) {
	if h.cfg.W == nil {
		return
	}
	var done int64
	if h.cfg.Done != nil {
		done = h.cfg.Done()
	}
	elapsed := time.Since(h.start)
	rate := 0.0
	if sec := elapsed.Seconds(); sec > 0 {
		rate = float64(done) / sec
	}
	line := fmt.Sprintf("%s: %d", h.cfg.Label, done)
	if h.cfg.Total > 0 {
		line = fmt.Sprintf("%s/%d (%.1f%%)", line, h.cfg.Total, 100*float64(done)/float64(h.cfg.Total))
	}
	line += fmt.Sprintf(" %.1f/s", rate)
	if final {
		line += fmt.Sprintf(" in %s", elapsed.Round(time.Millisecond))
	} else if h.cfg.Total > 0 && rate > 0 && done < h.cfg.Total {
		eta := time.Duration(float64(h.cfg.Total-done)/rate) * time.Second
		line += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	if h.cfg.Extra != nil {
		if x := h.cfg.Extra(); x != "" {
			line += " " + x
		}
	}
	fmt.Fprintln(h.cfg.W, line)
}
