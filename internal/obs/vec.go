package obs

import (
	"strings"
	"sync"
)

// Vec instruments add a label dimension to counters, gauges and
// histograms: a Vec is created once with its label keys, and With
// resolves a concrete label-value tuple to a cached child instrument.
// Children are ordinary registry instruments registered under the
// flattened series name name{k=v,k2=v2}, so snapshots, text/JSON export
// and the Prometheus exposition all see them without extra plumbing.
//
// With is a map lookup per call; hot paths resolve the handle once
// (e.g. per worker, per strategy) and then pay only the atomic op:
//
//	killed := m.CounterVec("campaign.outcomes", "status").With("killed")
//	for ... { killed.Inc() }
//
// Label values are used verbatim in the flattened name; keep them free
// of "," "=" "{" "}" (statuses, strategies and operator names all are).

// seriesName flattens a metric name plus label pairs into the canonical
// series key: name{k=v,k2=v2}. Labels follow registration order.
func seriesName(name string, keys, vals []string) string {
	var b strings.Builder
	b.Grow(len(name) + 16)
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		if i < len(vals) {
			b.WriteString(vals[i])
		}
	}
	b.WriteByte('}')
	return b.String()
}

// splitSeries parses a flattened series key back into its base name and
// label pairs; unlabeled names return (name, nil, nil).
func splitSeries(series string) (name string, keys, vals []string) {
	i := strings.IndexByte(series, '{')
	if i < 0 || !strings.HasSuffix(series, "}") {
		return series, nil, nil
	}
	name = series[:i]
	for _, pair := range strings.Split(series[i+1:len(series)-1], ",") {
		k, v, _ := strings.Cut(pair, "=")
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return name, keys, vals
}

// childKey joins label values into the Vec's cache key.
func childKey(vals []string) string { return strings.Join(vals, "\x1f") }

// CounterVec is a counter family with one child per label-value tuple.
type CounterVec struct {
	r        *Registry
	name     string
	keys     []string
	mu       sync.RWMutex
	children map[string]*Counter
}

// CounterVec returns the named counter family, creating it on first
// use. The label keys are fixed at first registration.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{r: r, name: name, keys: labels, children: make(map[string]*Counter)}
		r.counterVecs[name] = v
	}
	return v
}

// With resolves the child counter for the given label values, creating
// and registering it on first use. The returned handle is cached and
// stable: hot paths call With once and keep the *Counter. Safe on nil
// (returns a scratch counter).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return new(Counter)
	}
	key := childKey(values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	c = v.r.Counter(seriesName(v.name, v.keys, values))
	v.mu.Lock()
	v.children[key] = c
	v.mu.Unlock()
	return c
}

// GaugeVec is a gauge family with one child per label-value tuple.
type GaugeVec struct {
	r        *Registry
	name     string
	keys     []string
	mu       sync.RWMutex
	children map[string]*Gauge
}

// GaugeVec returns the named gauge family, creating it on first use.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{r: r, name: name, keys: labels, children: make(map[string]*Gauge)}
		r.gaugeVecs[name] = v
	}
	return v
}

// With resolves the child gauge for the given label values. Safe on nil.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return new(Gauge)
	}
	key := childKey(values)
	v.mu.RLock()
	g, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	g = v.r.Gauge(seriesName(v.name, v.keys, values))
	v.mu.Lock()
	v.children[key] = g
	v.mu.Unlock()
	return g
}

// HistogramVec is a histogram family with one child per label-value
// tuple.
type HistogramVec struct {
	r        *Registry
	name     string
	keys     []string
	mu       sync.RWMutex
	children map[string]*Histogram
}

// HistogramVec returns the named histogram family, creating it on first
// use.
func (r *Registry) HistogramVec(name string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histVecs[name]
	if !ok {
		v = &HistogramVec{r: r, name: name, keys: labels, children: make(map[string]*Histogram)}
		r.histVecs[name] = v
	}
	return v
}

// With resolves the child histogram for the given label values. Safe on
// nil.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return new(Histogram)
	}
	key := childKey(values)
	v.mu.RLock()
	h, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	h = v.r.Histogram(seriesName(v.name, v.keys, values))
	v.mu.Lock()
	v.children[key] = h
	v.mu.Unlock()
	return h
}
