package assertion_test

import (
	"testing"

	"gadt/internal/assertion"
	"gadt/internal/exectree"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

const harvestSubject = `
program harv;
var a, b, c, d: integer;

function inc(x: integer): integer;
begin
  inc := x + 1;
end;

function dbl(x: integer): integer;
begin
  dbl := x * 2;
end;

begin
  a := inc(1);
  b := inc(5);
  c := inc(9);
  d := dbl(3);
  writeln(a + b + c + d);
end.
`

// harvestBuggy is harvestSubject with inc off by one — the harvested
// assertion must flag its invocations.
const harvestBuggy = `
program harv;
var a, b, c, d: integer;

function inc(x: integer): integer;
begin
  inc := x + 2;
end;

function dbl(x: integer): integer;
begin
  dbl := x * 2;
end;

begin
  a := inc(1);
  b := inc(5);
  c := inc(9);
  d := dbl(3);
  writeln(a + b + c + d);
end.
`

func harvestTrace(t *testing.T, src string) *exectree.Tree {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(info, "")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res.Tree
}

func findUnit(t *testing.T, tree *exectree.Tree, unit string) *exectree.Node {
	t.Helper()
	var found *exectree.Node
	tree.Walk(func(n *exectree.Node) bool {
		if found == nil && n.Unit.Name == unit {
			found = n
		}
		return true
	})
	if found == nil {
		t.Fatalf("no %s invocation in the tree", unit)
	}
	return found
}

// TestGeneralizeFindsValidatedTemplate: three distinct passing inc calls
// must yield the one template that holds on all of them (result = x + 1)
// and reject the lookalikes fitted on a single sample (result = 2 * x
// matches inc(1) = 2 but not inc(5) = 6).
func TestGeneralizeFindsValidatedTemplate(t *testing.T) {
	tree := harvestTrace(t, harvestSubject)
	db := assertion.Generalize(tree.Nodes, assertion.GeneralizeOptions{})
	got := db.ForUnit("inc")
	if len(got) != 1 || got[0].Text != "result = x + 1" {
		texts := make([]string, len(got))
		for i, a := range got {
			texts[i] = a.Text
		}
		t.Fatalf("inc assertions = %v, want exactly [result = x + 1]", texts)
	}
	// dbl has a single sample — below MinSamples, no extrapolation.
	if len(db.ForUnit("dbl")) != 0 {
		t.Error("dbl generalized from a single sample")
	}
}

// TestGeneralizedAssertionJudgesMutant closes the loop: the assertion
// harvested from the reference run must hold on reference invocations
// and flag the off-by-one mutant's.
func TestGeneralizedAssertionJudgesMutant(t *testing.T) {
	db := assertion.Generalize(harvestTrace(t, harvestSubject).Nodes, assertion.GeneralizeOptions{})
	good := findUnit(t, harvestTrace(t, harvestSubject), "inc")
	if v := db.Judge(good); v != assertion.Holds {
		t.Errorf("reference inc judged %v, want Holds", v)
	}
	bad := findUnit(t, harvestTrace(t, harvestBuggy), "inc")
	if v := db.Judge(bad); v != assertion.Violated {
		t.Errorf("mutant inc judged %v, want Violated", v)
	}
}

// TestGeneralizeRequiresDistinctInputs: repeating one call many times is
// no evidence for a template — MinDistinct must gate it.
func TestGeneralizeRequiresDistinctInputs(t *testing.T) {
	tree := harvestTrace(t, `
program rep;
var a, b, c: integer;

function inc(x: integer): integer;
begin
  inc := x + 1;
end;

begin
  a := inc(4);
  b := inc(4);
  c := inc(4);
  writeln(a + b + c);
end.
`)
	db := assertion.Generalize(tree.Nodes, assertion.GeneralizeOptions{})
	if n := len(db.ForUnit("inc")); n != 0 {
		t.Errorf("generalized %d assertions from identical calls, want 0", n)
	}
}

// TestDBAddDeduplicates: the engine owns assertion insertion and may see
// the same oracle-given assertion through several paths; the DB must
// keep one copy per (unit, text).
func TestDBAddDeduplicates(t *testing.T) {
	db := assertion.NewDB()
	a := assertion.MustParse("inc", "result = x + 1")
	db.Add(a)
	db.Add(assertion.MustParse("inc", "result = x + 1"))
	db.Add(assertion.MustParse("inc", "result = abs(x) + 1"))
	if db.Len() != 2 {
		t.Errorf("db has %d assertions after duplicate adds, want 2", db.Len())
	}
}
