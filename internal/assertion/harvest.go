// Assertion harvesting: the loop the paper sketches between testing and
// debugging. Passing unit invocations (e.g. every call in a mutation
// campaign's reference run) are generalized into candidate assertions —
// small integer templates over the unit's parameters — and a candidate
// is kept only when it holds on every harvested sample. The resulting
// DB answers later debugging queries without oracle interaction.
package assertion

import (
	"fmt"
	"sort"
	"strings"

	"gadt/internal/exectree"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
)

// GeneralizeOptions tunes the harvest.
type GeneralizeOptions struct {
	// MinSamples is the minimum number of passing invocations of a unit
	// before any generalization is attempted (0 = 3).
	MinSamples int
	// MinDistinct is the minimum number of distinct input vectors among
	// those samples — repeated identical calls carry no evidence for a
	// template (0 = 2).
	MinDistinct int
	// MaxPerUnit caps the assertions kept per unit, first candidate in
	// deterministic template order wins (0 = 4).
	MaxPerUnit int
}

func (o GeneralizeOptions) withDefaults() GeneralizeOptions {
	if o.MinSamples <= 0 {
		o.MinSamples = 3
	}
	if o.MinDistinct <= 0 {
		o.MinDistinct = 2
	}
	if o.MaxPerUnit <= 0 {
		o.MaxPerUnit = 4
	}
	return o
}

// Generalize derives assertions from passing invocations: the nodes are
// grouped by unit, candidate templates (copies, offsets, scalings,
// sums, differences, products, squares) are proposed per output, and a
// candidate survives only if it holds on every sample of its unit. The
// returned DB is ready for debugger.Options.Assertions.
//
// Every kept assertion is an equality fully determining an output, so a
// later Holds verdict means "this call computes the same function the
// reference did on the sampled domain" — an extrapolation, which is why
// the sample thresholds exist.
func Generalize(nodes []*exectree.Node, opt GeneralizeOptions) *DB {
	opt = opt.withDefaults()
	db := NewDB()
	byUnit := make(map[string][]*exectree.Node)
	var units []string
	for _, n := range nodes {
		if n == nil || n.Incomplete || n.IsRoot() {
			continue
		}
		name := n.Unit.Name
		if _, seen := byUnit[name]; !seen {
			units = append(units, name)
		}
		byUnit[name] = append(byUnit[name], n)
	}
	sort.Strings(units)
	for _, unit := range units {
		samples := byUnit[unit]
		if len(samples) < opt.MinSamples || distinctInputs(samples) < opt.MinDistinct {
			continue
		}
		kept := 0
		for _, text := range candidates(samples[0]) {
			if kept >= opt.MaxPerUnit {
				break
			}
			a, err := Parse(unit, text)
			if err != nil {
				continue
			}
			ok := true
			for _, n := range samples {
				if a.Eval(EnvFor(n)) != Holds {
					ok = false
					break
				}
			}
			if ok {
				db.Add(a)
				kept++
			}
		}
	}
	return db
}

// distinctInputs counts distinct rendered input vectors.
func distinctInputs(nodes []*exectree.Node) int {
	seen := make(map[string]bool)
	for _, n := range nodes {
		var parts []string
		for _, b := range n.Ins {
			parts = append(parts, interp.FormatValue(b.Value))
		}
		seen[strings.Join(parts, ",")] = true
	}
	return len(seen)
}

// candidates proposes template texts for one unit, from a prototype
// invocation: constants are fitted on the prototype and verified (like
// everything else) against all samples by the caller. Only
// integer-valued parameters participate.
func candidates(n *exectree.Node) []string {
	env := EnvFor(n)
	// Output terms: exit values of var/out parameters plus the function
	// result pseudo-name.
	var outs []string
	for _, b := range n.Outs {
		outs = append(outs, b.Name)
	}
	if n.Unit.Kind == ast.FuncKind {
		outs = append(outs, "result")
	}
	// Input terms: entry values. A name that is also an output denotes
	// the exit value in assertion syntax, so its entry value is reached
	// through the old_ prefix.
	isOut := make(map[string]bool, len(outs))
	for _, o := range outs {
		isOut[o] = true
	}
	var ins []string
	for _, b := range n.Ins {
		term := b.Name
		if isOut[term] {
			term = "old_" + term
		}
		ins = append(ins, term)
	}

	intOf := func(term string) (int64, bool) {
		v, ok := env[term]
		if !ok {
			return 0, false
		}
		return v.AsInt()
	}

	var texts []string
	for _, o := range outs {
		ov, ok := intOf(o)
		if !ok {
			continue
		}
		for _, t := range ins {
			tv, ok := intOf(t)
			if !ok {
				continue
			}
			texts = append(texts, fmt.Sprintf("%s = %s", o, t))
			if c := ov - tv; c > 0 {
				texts = append(texts, fmt.Sprintf("%s = %s + %d", o, t, c))
			} else if c < 0 {
				texts = append(texts, fmt.Sprintf("%s = %s - %d", o, t, -c))
			}
			if tv != 0 && ov%tv == 0 && ov/tv != 1 {
				texts = append(texts, fmt.Sprintf("%s = %d * %s", o, ov/tv, t))
			}
			texts = append(texts, fmt.Sprintf("%s = sqr(%s)", o, t))
			texts = append(texts, fmt.Sprintf("%s = abs(%s)", o, t))
		}
		for i, t1 := range ins {
			if _, ok := intOf(t1); !ok {
				continue
			}
			for j, t2 := range ins {
				if i == j {
					continue
				}
				if _, ok := intOf(t2); !ok {
					continue
				}
				if i < j {
					texts = append(texts, fmt.Sprintf("%s = %s + %s", o, t1, t2))
					texts = append(texts, fmt.Sprintf("%s = %s * %s", o, t1, t2))
				}
				texts = append(texts, fmt.Sprintf("%s = %s - %s", o, t1, t2))
			}
		}
	}
	return texts
}
