// Package assertion implements the assertion mechanism of Section 3
// (following Drabent et al.): besides yes/no answers, the user may give
// Boolean assertions about the intended behavior of a unit. Assertions
// are expressions over the unit's parameter values; once stored, they
// answer later queries without user interaction.
//
// Inside an assertion, a parameter name denotes its value at exit for
// var/out parameters and at entry for value parameters; the pseudo-name
// `result` denotes a function's result; `old_<name>` denotes the entry
// value of a var parameter. The expression syntax is the Pascal
// expression grammar (parsed with the front end's parser).
//
// The paper evaluates assertions with the DICE incremental compiler; we
// interpret them directly, which is behaviourally equivalent.
package assertion

import (
	"fmt"
	"strings"

	"gadt/internal/exectree"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/token"
)

// Assertion is one stored assertion about a unit.
type Assertion struct {
	Unit string
	Text string
	expr ast.Expr
}

// Parse compiles an assertion for the given unit.
func Parse(unit, text string) (*Assertion, error) {
	e, err := parser.ParseExpr(text)
	if err != nil {
		return nil, fmt.Errorf("assertion: %w", err)
	}
	return &Assertion{Unit: strings.ToLower(unit), Text: text, expr: e}, nil
}

// MustParse is Parse for known-good assertion literals; it panics on
// error.
func MustParse(unit, text string) *Assertion {
	a, err := Parse(unit, text)
	if err != nil {
		panic(err)
	}
	return a
}

// Verdict is the outcome of evaluating assertions against a call.
type Verdict int

const (
	Unknown Verdict = iota // assertion could not decide (evaluation error)
	Holds
	Violated
)

func (v Verdict) String() string {
	switch v {
	case Holds:
		return "holds"
	case Violated:
		return "violated"
	}
	return "unknown"
}

// Env is the name → value binding an assertion is evaluated under.
type Env map[string]interp.Value

// EnvFor builds the evaluation environment for an execution-tree node:
// entry values under `old_<name>` (and under the plain name for value
// parameters), exit values under the plain name for var/out parameters,
// and the function result under both `result` and the unit name.
func EnvFor(n *exectree.Node) Env {
	env := make(Env)
	for _, b := range n.Ins {
		env["old_"+b.Name] = b.Value
		env[b.Name] = b.Value
	}
	for _, b := range n.Outs {
		env[b.Name] = b.Value // exit value shadows entry value
	}
	if n.Unit.Kind == ast.FuncKind {
		env["result"] = n.Result
		env[n.Unit.Name] = n.Result
	}
	return env
}

// Eval evaluates the assertion under env.
func (a *Assertion) Eval(env Env) Verdict {
	v, err := evalExpr(a.expr, env)
	if err != nil {
		return Unknown
	}
	b, ok := v.AsBool()
	if !ok {
		return Unknown
	}
	if b {
		return Holds
	}
	return Violated
}

// DB stores assertions per unit name.
type DB struct {
	byUnit map[string][]*Assertion
	// trusted units are assumed correct without evaluation (library
	// routines the user vouches for).
	trusted map[string]bool
}

// NewDB returns an empty assertion database.
func NewDB() *DB {
	return &DB{byUnit: make(map[string][]*Assertion), trusted: make(map[string]bool)}
}

// Add stores an assertion. Adding the same (unit, text) twice is a
// no-op: the debugging engine inserts every oracle-supplied assertion,
// and oracles that also write to the same DB must stay harmless.
func (db *DB) Add(a *Assertion) {
	for _, have := range db.byUnit[a.Unit] {
		if have.Text == a.Text {
			return
		}
	}
	db.byUnit[a.Unit] = append(db.byUnit[a.Unit], a)
}

// AddText parses and stores an assertion for unit.
func (db *DB) AddText(unit, text string) error {
	a, err := Parse(unit, text)
	if err != nil {
		return err
	}
	db.Add(a)
	return nil
}

// Trust marks a unit as always correct.
func (db *DB) Trust(unit string) { db.trusted[strings.ToLower(unit)] = true }

// Len reports the number of stored assertions.
func (db *DB) Len() int {
	n := 0
	for _, as := range db.byUnit {
		n += len(as)
	}
	return n
}

// ForUnit returns the stored assertions for a unit (by lowercased name).
func (db *DB) ForUnit(unit string) []*Assertion {
	return db.byUnit[strings.ToLower(unit)]
}

// Judge evaluates all assertions for the node's unit: any violation
// yields Violated; otherwise, if at least one assertion held, Holds;
// with no applicable assertions, Unknown. Trusted units always Hold.
func (db *DB) Judge(n *exectree.Node) Verdict {
	if db.trusted[n.Unit.Name] {
		return Holds
	}
	as := db.byUnit[n.Unit.Name]
	if len(as) == 0 {
		return Unknown
	}
	env := EnvFor(n)
	decided := false
	for _, a := range as {
		switch a.Eval(env) {
		case Violated:
			return Violated
		case Holds:
			decided = true
		}
	}
	if decided {
		return Holds
	}
	return Unknown
}

// ---------------------------------------------------------------------------
// Expression evaluation over an Env

// Eval evaluates an arbitrary Pascal expression under env. Exported for
// the T-GEN selector/match machinery, which shares this vocabulary.
func Eval(e ast.Expr, env Env) (interp.Value, error) {
	return evalExpr(e, env)
}

func evalExpr(e ast.Expr, env Env) (interp.Value, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return interp.IntV(e.Value), nil
	case *ast.RealLit:
		return interp.RealV(e.Value), nil
	case *ast.StringLit:
		return interp.StrV(e.Value), nil
	case *ast.Ident:
		switch e.Name {
		case "true":
			return interp.BoolV(true), nil
		case "false":
			return interp.BoolV(false), nil
		}
		if v, ok := env[e.Name]; ok {
			return v, nil
		}
		return interp.Undef, fmt.Errorf("unbound name %s", e.Name)
	case *ast.UnaryExpr:
		x, err := evalExpr(e.X, env)
		if err != nil {
			return interp.Undef, err
		}
		switch e.Op {
		case token.Minus:
			if i, ok := x.AsInt(); ok {
				return interp.IntV(-i), nil
			}
			if f, ok := x.AsReal(); ok {
				return interp.RealV(-f), nil
			}
		case token.Plus:
			return x, nil
		case token.Not:
			if b, ok := x.AsBool(); ok {
				return interp.BoolV(!b), nil
			}
		}
		return interp.Undef, fmt.Errorf("bad unary operand")
	case *ast.IndexExpr:
		x, err := evalExpr(e.X, env)
		if err != nil {
			return interp.Undef, err
		}
		cur, ok := x.AsArray()
		if !ok {
			return interp.Undef, fmt.Errorf("indexing non-array")
		}
		out := x
		for _, ie := range e.Indices {
			iv, err := evalExpr(ie, env)
			if err != nil {
				return interp.Undef, err
			}
			i, ok := iv.AsInt()
			if !ok {
				return interp.Undef, fmt.Errorf("non-integer index")
			}
			slot, err := cur.At(i)
			if err != nil {
				return interp.Undef, err
			}
			out = *slot
			cur, _ = out.AsArray()
		}
		return out, nil
	case *ast.FieldExpr:
		x, err := evalExpr(e.X, env)
		if err != nil {
			return interp.Undef, err
		}
		rec, ok := x.AsRecord()
		if !ok {
			return interp.Undef, fmt.Errorf("selecting field of non-record")
		}
		slot, err := rec.FieldAddr(e.Field)
		if err != nil {
			return interp.Undef, err
		}
		return *slot, nil
	case *ast.CallExpr:
		// Small builtin vocabulary for assertions.
		args := make([]interp.Value, len(e.Args))
		for i, a := range e.Args {
			v, err := evalExpr(a, env)
			if err != nil {
				return interp.Undef, err
			}
			args[i] = v
		}
		return evalBuiltin(e.Name, args)
	case *ast.BinaryExpr:
		x, err := evalExpr(e.X, env)
		if err != nil {
			return interp.Undef, err
		}
		y, err := evalExpr(e.Y, env)
		if err != nil {
			return interp.Undef, err
		}
		return evalBinary(e.Op, x, y)
	}
	return interp.Undef, fmt.Errorf("unsupported assertion expression %T", e)
}

func evalBuiltin(name string, args []interp.Value) (interp.Value, error) {
	one := func() (int64, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("%s expects 1 argument", name)
		}
		i, ok := args[0].AsInt()
		if !ok {
			return 0, fmt.Errorf("%s expects an integer", name)
		}
		return i, nil
	}
	switch name {
	case "abs":
		i, err := one()
		if err != nil {
			return interp.Undef, err
		}
		if i < 0 {
			return interp.IntV(-i), nil
		}
		return interp.IntV(i), nil
	case "sqr":
		i, err := one()
		if err != nil {
			return interp.Undef, err
		}
		return interp.IntV(i * i), nil
	case "odd":
		i, err := one()
		if err != nil {
			return interp.Undef, err
		}
		return interp.BoolV(i%2 != 0), nil
	case "len":
		if len(args) == 1 {
			if a, ok := args[0].AsArray(); ok {
				return interp.IntV(a.Hi - a.Lo + 1), nil
			}
		}
		return interp.Undef, fmt.Errorf("len expects an array")
	case "sum":
		if len(args) == 1 {
			if a, ok := args[0].AsArray(); ok {
				var s int64
				for _, el := range a.Elems {
					i, ok := el.AsInt()
					if !ok {
						return interp.Undef, fmt.Errorf("sum over non-integer array")
					}
					s += i
				}
				return interp.IntV(s), nil
			}
		}
		if len(args) == 2 {
			// sum(a, n): sum of the first n elements.
			a, ok1 := args[0].AsArray()
			n, ok2 := args[1].AsInt()
			if ok1 && ok2 {
				var s int64
				for i := int64(0); i < n && i < int64(len(a.Elems)); i++ {
					iv, ok := a.Elems[i].AsInt()
					if !ok {
						return interp.Undef, fmt.Errorf("sum over non-integer array")
					}
					s += iv
				}
				return interp.IntV(s), nil
			}
		}
		return interp.Undef, fmt.Errorf("sum expects an array (and optionally a count)")
	}
	return interp.Undef, fmt.Errorf("unknown assertion function %s", name)
}

func evalBinary(op token.Kind, x, y interp.Value) (interp.Value, error) {
	switch op {
	case token.And:
		xb, ok1 := x.AsBool()
		yb, ok2 := y.AsBool()
		if ok1 && ok2 {
			return interp.BoolV(xb && yb), nil
		}
	case token.Or:
		xb, ok1 := x.AsBool()
		yb, ok2 := y.AsBool()
		if ok1 && ok2 {
			return interp.BoolV(xb || yb), nil
		}
	case token.Eq:
		return interp.BoolV(interp.ValuesEqual(x, y)), nil
	case token.NotEq:
		return interp.BoolV(!interp.ValuesEqual(x, y)), nil
	}
	xi, xInt := x.AsInt()
	yi, yInt := y.AsInt()
	if xInt && yInt {
		switch op {
		case token.Plus:
			return interp.IntV(xi + yi), nil
		case token.Minus:
			return interp.IntV(xi - yi), nil
		case token.Star:
			return interp.IntV(xi * yi), nil
		case token.Div:
			if yi == 0 {
				return interp.Undef, fmt.Errorf("division by zero")
			}
			return interp.IntV(xi / yi), nil
		case token.Mod:
			if yi == 0 {
				return interp.Undef, fmt.Errorf("division by zero")
			}
			return interp.IntV(xi % yi), nil
		case token.Less:
			return interp.BoolV(xi < yi), nil
		case token.LessEq:
			return interp.BoolV(xi <= yi), nil
		case token.Greater:
			return interp.BoolV(xi > yi), nil
		case token.GreatEq:
			return interp.BoolV(xi >= yi), nil
		}
	}
	xf, xOK := toFloat(x)
	yf, yOK := toFloat(y)
	if xOK && yOK {
		switch op {
		case token.Plus:
			return interp.RealV(xf + yf), nil
		case token.Minus:
			return interp.RealV(xf - yf), nil
		case token.Star:
			return interp.RealV(xf * yf), nil
		case token.Slash:
			if yf == 0 {
				return interp.Undef, fmt.Errorf("division by zero")
			}
			return interp.RealV(xf / yf), nil
		case token.Less:
			return interp.BoolV(xf < yf), nil
		case token.LessEq:
			return interp.BoolV(xf <= yf), nil
		case token.Greater:
			return interp.BoolV(xf > yf), nil
		case token.GreatEq:
			return interp.BoolV(xf >= yf), nil
		}
	}
	return interp.Undef, fmt.Errorf("invalid operands for %s", op)
}

func toFloat(v interp.Value) (float64, bool) {
	if i, ok := v.AsInt(); ok {
		return float64(i), true
	}
	return v.AsReal()
}
