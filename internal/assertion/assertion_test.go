package assertion_test

import (
	"strings"
	"testing"

	"gadt/internal/assertion"
	"gadt/internal/exectree"
	"gadt/internal/paper"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func env(pairs ...any) assertion.Env {
	e := make(assertion.Env)
	for i := 0; i < len(pairs); i += 2 {
		e[pairs[i].(string)] = interp.MakeValue(pairs[i+1])
	}
	return e
}

func TestEvalBasics(t *testing.T) {
	cases := []struct {
		expr string
		env  assertion.Env
		want assertion.Verdict
	}{
		{"x = 3", env("x", int64(3)), assertion.Holds},
		{"x = 3", env("x", int64(4)), assertion.Violated},
		{"x < y", env("x", int64(1), "y", int64(2)), assertion.Holds},
		{"(x > 0) and (y > 0)", env("x", int64(1), "y", int64(-1)), assertion.Violated},
		{"(x > 0) or (y > 0)", env("x", int64(1), "y", int64(-1)), assertion.Holds},
		{"not (x = 0)", env("x", int64(1)), assertion.Holds},
		{"x mod 2 = 0", env("x", int64(4)), assertion.Holds},
		{"x div 2 = 2", env("x", int64(5)), assertion.Holds},
		{"abs(x) = 5", env("x", int64(-5)), assertion.Holds},
		{"sqr(x) = 9", env("x", int64(3)), assertion.Holds},
		{"odd(x)", env("x", int64(7)), assertion.Holds},
		{"r > 1.5", env("r", 2.5), assertion.Holds},
		{"r = 2", env("r", 2.0), assertion.Holds}, // int/real mixing
		{"s = 'abc'", env("s", "abc"), assertion.Holds},
		{"b", env("b", true), assertion.Holds},
		{"missing = 1", env(), assertion.Unknown},
		{"x div 0 = 1", env("x", int64(1)), assertion.Unknown}, // eval error
		{"x + 1", env("x", int64(1)), assertion.Unknown},       // non-boolean
	}
	for _, tc := range cases {
		a, err := assertion.Parse("u", tc.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.expr, err)
		}
		if got := a.Eval(tc.env); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestArrayHelpers(t *testing.T) {
	arr := &interp.ArrayVal{Lo: 1, Hi: 4, Elems: []interp.Value{interp.IntV(1), interp.IntV(2), interp.IntV(3), interp.IntV(4)}}
	cases := []struct {
		expr string
		want assertion.Verdict
	}{
		{"sum(a) = 10", assertion.Holds},
		{"sum(a, n) = 3", assertion.Holds}, // first 2 elements
		{"len(a) = 4", assertion.Holds},
		{"a[1] = 1", assertion.Holds},
		{"a[4] = 4", assertion.Holds},
		{"a[9] = 0", assertion.Unknown}, // out of range
	}
	e := env("a", arr, "n", int64(2))
	for _, tc := range cases {
		a := assertion.MustParse("u", tc.expr)
		if got := a.Eval(e); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{"", "x +", "1 ="} {
		if _, err := assertion.Parse("u", expr); err == nil {
			t.Errorf("Parse(%q): expected error", expr)
		}
	}
}

func TestEnvForNode(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(info, "")
	var arrsum, dec *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		switch n.Unit.Name {
		case "arrsum":
			arrsum = n
		case "decrement":
			dec = n
		}
		return true
	})
	e := assertion.EnvFor(arrsum)
	if !interp.ValuesEqual(e["n"], interp.IntV(2)) {
		t.Errorf("n = %v", e["n"])
	}
	if !interp.ValuesEqual(e["b"], interp.IntV(3)) {
		t.Errorf("b (exit value) = %v, want 3", e["b"])
	}
	if !interp.ValuesEqual(e["old_b"], interp.IntV(0)) {
		t.Errorf("old_b (entry value) = %v, want 0", e["old_b"])
	}
	de := assertion.EnvFor(dec)
	if !interp.ValuesEqual(de["result"], interp.IntV(4)) || !interp.ValuesEqual(de["decrement"], interp.IntV(4)) {
		t.Errorf("result bindings = %v / %v", de["result"], de["decrement"])
	}
}

func TestDBJudge(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(info, "")
	var arrsum, dec, sq *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		switch n.Unit.Name {
		case "arrsum":
			arrsum = n
		case "decrement":
			dec = n
		case "square":
			sq = n
		}
		return true
	})

	db := assertion.NewDB()
	if err := db.AddText("arrsum", "b = sum(a, n)"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddText("decrement", "result = y - 1"); err != nil {
		t.Fatal(err)
	}
	db.Trust("square")

	if v := db.Judge(arrsum); v != assertion.Holds {
		t.Errorf("arrsum = %v, want holds", v)
	}
	if v := db.Judge(dec); v != assertion.Violated {
		t.Errorf("decrement = %v, want violated (buggy)", v)
	}
	if v := db.Judge(sq); v != assertion.Holds {
		t.Errorf("square (trusted) = %v, want holds", v)
	}
	var sum1 *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		if n.Unit.Name == "sum1" {
			sum1 = n
		}
		return true
	})
	if v := db.Judge(sum1); v != assertion.Unknown {
		t.Errorf("sum1 (no assertions) = %v, want unknown", v)
	}
	if db.Len() != 2 {
		t.Errorf("db len = %d", db.Len())
	}
}

func TestMultipleAssertionsAnyViolationWins(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	info, _ := sem.Analyze(prog)
	res := exectree.Trace(info, "")
	var arrsum *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		if n.Unit.Name == "arrsum" {
			arrsum = n
		}
		return true
	})
	db := assertion.NewDB()
	db.AddText("arrsum", "b = sum(a, n)") // holds
	db.AddText("arrsum", "b < 0")         // violated
	if v := db.Judge(arrsum); v != assertion.Violated {
		t.Errorf("judge = %v, want violated", v)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	assertion.MustParse("u", "1 +")
}

func TestUnknownFunction(t *testing.T) {
	a := assertion.MustParse("u", "mystery(x) = 1")
	if got := a.Eval(env("x", int64(1))); got != assertion.Unknown {
		t.Errorf("unknown function = %v, want unknown", got)
	}
}

func TestRecordFieldAccess(t *testing.T) {
	rec := &interp.RecordVal{Names: []string{"x", "y"}, Fields: []interp.Value{interp.IntV(3), interp.IntV(4)}}
	a := assertion.MustParse("u", "p.x + p.y = 7")
	if got := a.Eval(env("p", rec)); got != assertion.Holds {
		t.Errorf("record assertion = %v", got)
	}
}

func TestErrorMessagesCarryContext(t *testing.T) {
	_, err := assertion.Parse("u", "x ===")
	if err == nil || !strings.Contains(err.Error(), "assertion") {
		t.Errorf("err = %v", err)
	}
}
