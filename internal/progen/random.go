package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// This file implements the seeded random program generator behind the
// differential-testing campaign (cmd/pdiff): deterministic, terminating,
// type-correct Pascal programs that exercise every construct the
// transformation pipeline rewrites — loops of all three forms (including
// downto), nested routines, functions used inside expressions, global
// communication, case statements and global gotos.
//
// Termination is guaranteed by construction: the call graph is acyclic
// (routines only call previously generated routines), for-loop bounds
// are small constants, and while/repeat loops count a dedicated counter
// variable down to zero. Counter variables are declared but never
// registered in any generation scope, so no generated statement, call or
// nested routine can assign them — only the loop glue touches them.

// RandomConfig shapes one random program.
type RandomConfig struct {
	// Seed fully determines the program and its input.
	Seed int64
	// Gotos enables global gotos (from procedures to main-block labels).
	Gotos bool
	// Reads adds read(...) of generated input values at the start.
	Reads bool
}

// RandomProgram is one generated differential-testing subject.
type RandomProgram struct {
	Name   string
	Source string
	Input  string
}

// Random generates a deterministic random program for a seed.
func Random(cfg RandomConfig) *RandomProgram {
	g := &rgen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	src, input := g.program()
	return &RandomProgram{
		Name:   fmt.Sprintf("rnd%d", cfg.Seed),
		Source: src,
		Input:  input,
	}
}

// nCounters is the number of reserved loop counters per routine (and for
// the main block). Deeper loop nests reuse counters round-robin, which
// preserves termination: every counting loop body ends with its own
// decrement, so an inner reset still drives the outer loop to exit.
const nCounters = 4

type rroutine struct {
	name     string
	isFunc   bool
	params   int  // value parameters, all integer
	varParam bool // one trailing `var` parameter
	// tainted marks routines that may exit via a global goto (directly
	// or through a callee). Functions must never call tainted routines:
	// a goto escaping a function frame is a runtime error in the
	// interpreter and a static rejection in the transformer.
	tainted bool
}

// rscope is the set of integer variables visible at a generation site.
type rscope struct {
	vars     []string // assignable, readable variables
	counters []string // reserved loop counters (not in vars)
	nextCtr  int
	funcs    []*rroutine // callable integer functions (already declared)
	procs    []*rroutine // callable procedures (already declared)
}

type rgen struct {
	rng   *rand.Rand
	cfg   RandomConfig
	b     strings.Builder
	seq   int
	label int // 0 = no escape label; else the label number in main
	depth int // statement nesting depth (for indentation and bounding)
	// taint tracks whether the routine currently being generated may
	// exit via a global goto.
	taint bool
}

func (g *rgen) fresh(base string) string {
	g.seq++
	return fmt.Sprintf("%s%d", base, g.seq)
}

func (g *rgen) pick(n int) int { return g.rng.Intn(n) }

func (g *rgen) program() (src, input string) {
	nGlobals := 3 + g.pick(4)
	var globals []string
	for i := 0; i < nGlobals; i++ {
		globals = append(globals, fmt.Sprintf("g%d", i))
	}

	var reads []string
	var inputs []string
	if g.cfg.Reads {
		for i := 0; i < 1+g.pick(3); i++ {
			reads = append(reads, fmt.Sprintf("in%d", i))
			inputs = append(inputs, fmt.Sprintf("%d", g.pick(21)))
		}
	}

	useGoto := g.cfg.Gotos && g.pick(2) == 0
	if useGoto {
		g.label = 99
	}

	scope := &rscope{}
	scope.vars = append(scope.vars, globals...)
	scope.vars = append(scope.vars, reads...)
	for i := 0; i < nCounters; i++ {
		scope.counters = append(scope.counters, fmt.Sprintf("mc%d", i))
	}

	fmt.Fprintf(&g.b, "program rnd;\n")
	if g.label != 0 {
		fmt.Fprintf(&g.b, "label %d;\n", g.label)
	}
	fmt.Fprintf(&g.b, "var %s: integer;\n", strings.Join(globals, ", "))
	if len(reads) > 0 {
		fmt.Fprintf(&g.b, "var %s: integer;\n", strings.Join(reads, ", "))
	}
	fmt.Fprintf(&g.b, "var %s: integer;\n\n", strings.Join(scope.counters, ", "))

	// Routines: acyclic (each only calls previously declared ones), and
	// roughly one in three nests a child routine.
	nRoutines := 2 + g.pick(4)
	for i := 0; i < nRoutines; i++ {
		g.routine(scope, 1, true)
	}

	// Main body.
	g.b.WriteString("begin\n")
	g.depth = 1
	if len(reads) > 0 {
		g.writeIndent()
		fmt.Fprintf(&g.b, "read(%s);\n", strings.Join(reads, ", "))
	}
	for i := 0; i < len(globals); i++ {
		g.writeIndent()
		fmt.Fprintf(&g.b, "g%d := %d;\n", i, g.pick(10))
	}
	n := 4 + g.pick(5)
	for i := 0; i < n; i++ {
		g.stmt(scope, true)
	}
	if g.label != 0 {
		g.writeIndent()
		fmt.Fprintf(&g.b, "%d: writeln('escaped ', %s);\n", g.label, scope.vars[0])
	}
	// Final state dump so the output depends on every global.
	g.writeIndent()
	fmt.Fprintf(&g.b, "writeln(%s);\n", strings.Join(globals, ", "))
	g.b.WriteString("end.\n")
	return g.b.String(), strings.Join(inputs, " ")
}

// routine emits one routine (possibly with a nested child) into the
// output and registers it in scope.
func (g *rgen) routine(scope *rscope, level int, gotoOK bool) {
	r := &rroutine{
		name:   g.fresh("r"),
		isFunc: g.pick(3) == 0,
		params: g.pick(3),
	}
	if !r.isFunc {
		r.varParam = g.pick(3) == 0
	}

	var sig []string
	inner := &rscope{funcs: scope.funcs, procs: scope.procs}
	// Routines see the enclosing scope's variables (globals, or also the
	// parent routine's locals and params for nested children).
	inner.vars = append(inner.vars, scope.vars...)
	for i := 0; i < r.params; i++ {
		p := fmt.Sprintf("p%d_%s", i, r.name)
		sig = append(sig, fmt.Sprintf("%s: integer", p))
		inner.vars = append(inner.vars, p)
	}
	if r.varParam {
		p := "vp_" + r.name
		sig = append(sig, fmt.Sprintf("var %s: integer", p))
		inner.vars = append(inner.vars, p)
	}
	kind, ret := "procedure", ""
	if r.isFunc {
		kind, ret = "function", ": integer"
	}
	sigStr := ""
	if len(sig) > 0 {
		sigStr = "(" + strings.Join(sig, "; ") + ")"
	}
	indent := strings.Repeat("  ", level-1)
	fmt.Fprintf(&g.b, "%s%s %s%s%s;\n", indent, kind, r.name, sigStr, ret)

	// Locals, plus this routine's reserved counters.
	nLocals := 1 + g.pick(3)
	var locals []string
	for i := 0; i < nLocals; i++ {
		l := fmt.Sprintf("l%d_%s", i, r.name)
		locals = append(locals, l)
		inner.vars = append(inner.vars, l)
	}
	for i := 0; i < nCounters; i++ {
		inner.counters = append(inner.counters, fmt.Sprintf("c%d_%s", i, r.name))
	}
	fmt.Fprintf(&g.b, "%svar %s: integer;\n", indent, strings.Join(locals, ", "))
	fmt.Fprintf(&g.b, "%svar %s: integer;\n", indent, strings.Join(inner.counters, ", "))

	allowGoto := gotoOK && !r.isFunc

	// Possibly one nested child routine (one extra level only).
	if level == 1 && g.pick(3) == 0 {
		g.routine(inner, level+1, allowGoto)
	}

	fmt.Fprintf(&g.b, "%sbegin\n", indent)
	g.depth = level
	outerTaint := g.taint
	g.taint = false
	// Initialize locals so values do not depend on allocation defaults.
	for _, l := range locals {
		g.writeIndent()
		fmt.Fprintf(&g.b, "%s := %s;\n", l, g.expr(inner, 1))
	}
	n := 2 + g.pick(4)
	for i := 0; i < n; i++ {
		g.stmt(inner, allowGoto)
	}
	if r.isFunc {
		g.writeIndent()
		fmt.Fprintf(&g.b, "%s := %s;\n", r.name, g.expr(inner, 2))
	}
	fmt.Fprintf(&g.b, "%send;\n\n", indent)

	r.tainted = g.taint
	// A tainted nested child taints the parent: the child's goto unwinds
	// through the parent's frame when the parent calls it.
	g.taint = outerTaint || g.taint

	if r.isFunc {
		scope.funcs = append(scope.funcs, r)
	} else {
		scope.procs = append(scope.procs, r)
	}
}

func (g *rgen) writeIndent() {
	g.b.WriteString(strings.Repeat("  ", g.depth))
}

// stmt emits one random statement. allowGoto additionally permits a
// global goto; it is false inside functions (and routines nested in
// functions would make their caller a function with exit effects), which
// the transformer rejects by design.
func (g *rgen) stmt(s *rscope, allowGoto bool) {
	kind := g.pick(20)
	deep := g.depth >= 4
	switch {
	case kind < 7 || deep: // assignment
		g.writeIndent()
		fmt.Fprintf(&g.b, "%s := %s;\n", s.vars[g.pick(len(s.vars))], g.expr(s, 2))
	case kind < 9: // writeln
		g.writeIndent()
		fmt.Fprintf(&g.b, "writeln(%s);\n", g.expr(s, 1))
	case kind < 11 && len(g.callableProcs(s, allowGoto)) > 0: // procedure call
		g.writeIndent()
		g.b.WriteString(g.callStmt(s, allowGoto))
	case kind < 13: // if
		g.writeIndent()
		fmt.Fprintf(&g.b, "if %s then begin\n", g.cond(s))
		g.depth++
		g.stmt(s, allowGoto)
		g.depth--
		g.writeIndent()
		if g.pick(2) == 0 {
			g.b.WriteString("end else begin\n")
			g.depth++
			g.stmt(s, allowGoto)
			g.depth--
			g.writeIndent()
		}
		g.b.WriteString("end;\n")
	case kind < 15: // for loop over a regular variable
		v := s.vars[g.pick(len(s.vars))]
		from := g.pick(4)
		span := 1 + g.pick(5)
		g.writeIndent()
		if g.pick(3) == 0 {
			fmt.Fprintf(&g.b, "for %s := %d downto %d do begin\n", v, from+span, from)
		} else {
			fmt.Fprintf(&g.b, "for %s := %d to %d do begin\n", v, from, from+span)
		}
		g.depth++
		g.stmt(s, allowGoto)
		g.stmt(s, allowGoto)
		g.depth--
		g.writeIndent()
		g.b.WriteString("end;\n")
	case kind < 16: // while loop counting a reserved counter down
		c := g.counterVar(s)
		g.writeIndent()
		fmt.Fprintf(&g.b, "%s := %d;\n", c, 1+g.pick(5))
		g.writeIndent()
		fmt.Fprintf(&g.b, "while %s > 0 do begin\n", c)
		g.depth++
		g.stmt(s, allowGoto)
		g.writeIndent()
		fmt.Fprintf(&g.b, "%s := %s - 1;\n", c, c)
		g.depth--
		g.writeIndent()
		g.b.WriteString("end;\n")
	case kind < 17: // repeat loop counting a reserved counter down
		c := g.counterVar(s)
		g.writeIndent()
		fmt.Fprintf(&g.b, "%s := %d;\n", c, 1+g.pick(5))
		g.writeIndent()
		g.b.WriteString("repeat\n")
		g.depth++
		g.stmt(s, allowGoto)
		g.writeIndent()
		fmt.Fprintf(&g.b, "%s := %s - 1;\n", c, c)
		g.depth--
		g.writeIndent()
		fmt.Fprintf(&g.b, "until %s <= 0;\n", c)
	case kind < 19: // case (negative selector values fall to else)
		g.writeIndent()
		fmt.Fprintf(&g.b, "case (%s) mod 3 of\n", g.expr(s, 1))
		g.depth++
		for arm := 0; arm < 3; arm++ {
			g.writeIndent()
			fmt.Fprintf(&g.b, "%d: begin\n", arm)
			g.depth++
			g.stmt(s, allowGoto)
			g.depth--
			g.writeIndent()
			g.b.WriteString("end;\n")
		}
		g.writeIndent()
		g.b.WriteString("else begin\n")
		g.depth++
		g.stmt(s, allowGoto)
		g.depth--
		g.writeIndent()
		g.b.WriteString("end;\n")
		g.depth--
		g.writeIndent()
		g.b.WriteString("end;\n")
	default: // global goto (guarded), else assignment
		if allowGoto && g.label != 0 && g.pick(3) == 0 {
			g.writeIndent()
			fmt.Fprintf(&g.b, "if %s then goto %d;\n", g.cond(s), g.label)
			g.taint = true
			return
		}
		g.writeIndent()
		fmt.Fprintf(&g.b, "%s := %s;\n", s.vars[g.pick(len(s.vars))], g.expr(s, 2))
	}
}

// counterVar hands out the scope's reserved counters round-robin.
func (g *rgen) counterVar(s *rscope) string {
	c := s.counters[s.nextCtr%len(s.counters)]
	s.nextCtr++
	return c
}

// cond builds a parenthesized boolean expression.
func (g *rgen) cond(s *rscope) string {
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	c := fmt.Sprintf("(%s) %s (%s)", g.expr(s, 1), ops[g.pick(len(ops))], g.expr(s, 1))
	switch g.pick(6) {
	case 0:
		c2 := fmt.Sprintf("(%s) %s (%s)", g.expr(s, 1), ops[g.pick(len(ops))], g.expr(s, 1))
		return fmt.Sprintf("(%s) and (%s)", c, c2)
	case 1:
		return "not (" + c + ")"
	case 2:
		return fmt.Sprintf("odd(%s)", g.expr(s, 1))
	}
	return c
}

// expr builds a fully parenthesized integer expression of bounded depth.
func (g *rgen) expr(s *rscope, depth int) string {
	if depth <= 0 {
		if g.pick(2) == 0 {
			return fmt.Sprintf("%d", g.pick(10))
		}
		return s.vars[g.pick(len(s.vars))]
	}
	switch g.pick(10) {
	case 0, 1:
		return fmt.Sprintf("%d", g.pick(10))
	case 2, 3:
		return s.vars[g.pick(len(s.vars))]
	case 4:
		return fmt.Sprintf("(%s) + (%s)", g.expr(s, depth-1), g.expr(s, depth-1))
	case 5:
		return fmt.Sprintf("(%s) - (%s)", g.expr(s, depth-1), g.expr(s, depth-1))
	case 6:
		return fmt.Sprintf("(%s) * (%s)", g.expr(s, depth-1), g.expr(s, depth-1))
	case 7:
		// Non-zero constant denominators keep runs crash-free.
		if g.pick(2) == 0 {
			return fmt.Sprintf("(%s) div %d", g.expr(s, depth-1), 2+g.pick(5))
		}
		return fmt.Sprintf("(%s) mod %d", g.expr(s, depth-1), 2+g.pick(5))
	case 8:
		if len(s.funcs) > 0 {
			f := s.funcs[g.pick(len(s.funcs))]
			var args []string
			for i := 0; i < f.params; i++ {
				args = append(args, g.expr(s, 0))
			}
			if len(args) == 0 {
				return f.name // parameterless function reference
			}
			return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
		}
		return s.vars[g.pick(len(s.vars))]
	default:
		return fmt.Sprintf("-(%s)", g.expr(s, depth-1))
	}
}

// callableProcs filters the visible procedures: contexts that may not
// raise a global goto (function bodies and their nested children) can
// only call untainted procedures.
func (g *rgen) callableProcs(s *rscope, allowGoto bool) []*rroutine {
	if allowGoto {
		return s.procs
	}
	var out []*rroutine
	for _, p := range s.procs {
		if !p.tainted {
			out = append(out, p)
		}
	}
	return out
}

// callStmt builds a call to a visible procedure (with trailing newline).
func (g *rgen) callStmt(s *rscope, allowGoto bool) string {
	procs := g.callableProcs(s, allowGoto)
	p := procs[g.pick(len(procs))]
	if p.tainted {
		g.taint = true
	}
	var args []string
	for i := 0; i < p.params; i++ {
		args = append(args, g.expr(s, 1))
	}
	if p.varParam {
		args = append(args, s.vars[g.pick(len(s.vars))])
	}
	if len(args) == 0 {
		return p.name + ";\n"
	}
	return fmt.Sprintf("%s(%s);\n", p.name, strings.Join(args, ", "))
}
