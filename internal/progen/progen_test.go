package progen_test

import (
	"strings"
	"testing"

	"gadt/internal/gadt"
	"gadt/internal/progen"
)

func TestGeneratedProgramsRun(t *testing.T) {
	cases := []progen.Config{
		{Depth: 1, Fanout: 1},
		{Depth: 2, Fanout: 2},
		{Depth: 3, Fanout: 2},
		{Depth: 2, Fanout: 3, BugPath: []int{1, 2}},
		{Depth: 2, Fanout: 2, Style: progen.Globals},
		{Depth: 2, Fanout: 2, Loops: true},
		{Depth: 2, Fanout: 2, Style: progen.Globals, Loops: true},
	}
	for _, cfg := range cases {
		p := progen.Generate(cfg)
		if p.BuggyUnit == "" {
			t.Fatalf("cfg %+v: no bug unit", cfg)
		}
		buggy, err := gadt.Load("buggy.pas", p.Buggy)
		if err != nil {
			t.Fatalf("cfg %+v: buggy does not load: %v\n%s", cfg, err, p.Buggy)
		}
		fixed, err := gadt.Load("fixed.pas", p.Fixed)
		if err != nil {
			t.Fatalf("cfg %+v: fixed does not load: %v", cfg, err)
		}
		rb := buggy.TraceOriginal("")
		rf := fixed.TraceOriginal("")
		if rb.RunErr != nil || rf.RunErr != nil {
			t.Fatalf("cfg %+v: runtime errors %v / %v", cfg, rb.RunErr, rf.RunErr)
		}
		if rb.Output == rf.Output {
			t.Errorf("cfg %+v: bug has no observable symptom (both print %q)", cfg, rb.Output)
		}
	}
}

func TestBugLocalizableEndToEnd(t *testing.T) {
	for _, cfg := range []progen.Config{
		{Depth: 3, Fanout: 2, BugPath: []int{1, 0, 1}},
		{Depth: 2, Fanout: 2, Style: progen.Globals},
		{Depth: 2, Fanout: 2, Loops: true},
	} {
		p := progen.Generate(cfg)
		sys, err := gadt.Load("buggy.pas", p.Buggy)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sys.Trace("")
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		oracle, err := gadt.IntendedOracle(p.Fixed)
		if err != nil {
			t.Fatal(err)
		}
		out, err := run.Debug(oracle, gadt.DebugConfig{Slicing: true})
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if !out.Localized() {
			t.Fatalf("cfg %+v: not localized", cfg)
		}
		// The bug must be localized in the buggy unit or (with loops) in
		// one of its extracted loop units.
		got := out.Bug.Unit.Name
		if got != p.BuggyUnit && !strings.HasPrefix(got, p.BuggyUnit+"_loop") {
			t.Errorf("cfg %+v: localized %s, want %s", cfg, got, p.BuggyUnit)
		}
	}
}

func TestUnitsCounting(t *testing.T) {
	p := progen.Generate(progen.Config{Depth: 3, Fanout: 2})
	// Internal: 1 + 2 + 4 = 7; leaves: 8; total 15.
	if p.Units != 15 || p.Leaves != 8 {
		t.Errorf("units = %d leaves = %d, want 15/8", p.Units, p.Leaves)
	}
}

func TestDeterminism(t *testing.T) {
	a := progen.Generate(progen.Config{Depth: 2, Fanout: 2})
	b := progen.Generate(progen.Config{Depth: 2, Fanout: 2})
	if a.Buggy != b.Buggy || a.Fixed != b.Fixed {
		t.Error("generation is not deterministic")
	}
	if a.Buggy == a.Fixed {
		t.Error("buggy and fixed are identical")
	}
}
