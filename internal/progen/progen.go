// Package progen deterministically generates synthetic Pascal subject
// programs (with a planted bug and the corresponding fixed reference)
// for the scaling experiments: interaction counts of the debugging
// strategies, slicing effectiveness, and transformation growth on
// programs much larger than the paper's four-page examples.
package progen

import (
	"fmt"
	"strings"
)

// Style selects how routines communicate.
type Style int

const (
	// Params: values flow through parameters only (already
	// side-effect-free, like Figure 4).
	Params Style = iota
	// Globals: routines communicate through global variables, forcing
	// the transformation phase to rewrite everything.
	Globals
)

// Config shapes the generated program.
type Config struct {
	// Depth of the call tree below the root routine (>= 1).
	Depth int
	// Fanout is the number of children (and outputs) per internal
	// routine (>= 1).
	Fanout int
	// BugPath selects the buggy leaf by child index at each level
	// (values taken modulo Fanout); an empty path plants the bug in the
	// leftmost leaf.
	BugPath []int
	// Style selects parameter or global communication.
	Style Style
	// Loops adds a small summation loop to every leaf, exercising loop
	// units.
	Loops bool
}

// Program is one generated subject.
type Program struct {
	Buggy string // source with the planted bug
	Fixed string // reference source
	// BuggyUnit is the name of the routine containing the bug.
	BuggyUnit string
	// Units is the total number of routines generated (excluding main).
	Units int
	// Leaves is the number of leaf routines.
	Leaves int
}

// Generate builds the program pair.
func Generate(cfg Config) *Program {
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	if cfg.Fanout < 1 {
		cfg.Fanout = 1
	}
	g := &gen{cfg: cfg}
	buggy := g.program(true)
	fixed := g.program(false)
	return &Program{
		Buggy:     buggy,
		Fixed:     fixed,
		BuggyUnit: g.bugUnit,
		Units:     g.units,
		Leaves:    g.leaves,
	}
}

type gen struct {
	cfg     g1
	bugUnit string
	units   int
	leaves  int
}

type g1 = Config

// bugChild returns the child index on the bug path at the given level.
func (g *gen) bugChild(level int) int {
	if level < len(g.cfg.BugPath) {
		return g.cfg.BugPath[level] % g.cfg.Fanout
	}
	return 0
}

func (g *gen) program(withBug bool) string {
	g.units, g.leaves = 0, 0
	var b strings.Builder
	b.WriteString("program synth;\n")
	if g.cfg.Style == Globals {
		// One global per routine output.
		var names []string
		g.collectGlobalNames(0, "u", &names)
		b.WriteString("var\n  " + strings.Join(names, ", ") + ": integer;\n")
		b.WriteString("var gseed: integer;\n")
	}
	var outs []string
	for i := 0; i < g.cfg.Fanout; i++ {
		outs = append(outs, fmt.Sprintf("res%d", i))
	}
	b.WriteString("var " + strings.Join(outs, ", ") + ": integer;\n\n")

	g.routine(&b, 0, "u", withBug, true)

	b.WriteString("begin\n")
	switch g.cfg.Style {
	case Globals:
		b.WriteString("  gseed := 3;\n")
		b.WriteString("  u;\n")
		for i := 0; i < g.cfg.Fanout; i++ {
			fmt.Fprintf(&b, "  res%d := %s;\n", i, globalName("u", i))
		}
	default:
		b.WriteString("  u(3")
		for i := 0; i < g.cfg.Fanout; i++ {
			fmt.Fprintf(&b, ", res%d", i)
		}
		b.WriteString(");\n")
	}
	b.WriteString("  writeln(" + strings.Join(outs, ", ") + ");\n")
	b.WriteString("end.\n")
	return b.String()
}

func globalName(name string, i int) string {
	return fmt.Sprintf("g_%s_%d", name, i)
}

func (g *gen) collectGlobalNames(level int, name string, out *[]string) {
	for i := 0; i < g.cfg.Fanout; i++ {
		*out = append(*out, globalName(name, i))
	}
	if level >= g.cfg.Depth {
		return
	}
	for i := 0; i < g.cfg.Fanout; i++ {
		g.collectGlobalNames(level+1, fmt.Sprintf("%s_%d", name, i), out)
	}
}

// routine emits the routine named name at the given level (and its
// descendants before it, since Pascal wants declarations first — our
// front end accepts any order, but emit children first for readability).
func (g *gen) routine(b *strings.Builder, level int, name string, withBug, onBugPath bool) {
	g.units++
	isLeaf := level >= g.cfg.Depth
	if isLeaf {
		g.leaves++
		g.leaf(b, name, withBug && onBugPath)
		return
	}
	// Children first.
	bugIdx := g.bugChild(level)
	for i := 0; i < g.cfg.Fanout; i++ {
		child := fmt.Sprintf("%s_%d", name, i)
		g.routine(b, level+1, child, withBug, onBugPath && i == bugIdx)
	}

	switch g.cfg.Style {
	case Globals:
		fmt.Fprintf(b, "procedure %s;\nbegin\n", name)
		for i := 0; i < g.cfg.Fanout; i++ {
			child := fmt.Sprintf("%s_%d", name, i)
			fmt.Fprintf(b, "  gseed := gseed + %d;\n", i)
			fmt.Fprintf(b, "  %s;\n", child)
			// Combine the child's outputs into this routine's i-th output.
			fmt.Fprintf(b, "  %s := 0;\n", globalName(name, i))
			for j := 0; j < g.cfg.Fanout; j++ {
				fmt.Fprintf(b, "  %s := %s + %s;\n", globalName(name, i), globalName(name, i), globalName(child, j))
			}
			fmt.Fprintf(b, "  gseed := gseed - %d;\n", i)
		}
		b.WriteString("end;\n\n")
	default:
		var params []string
		for i := 0; i < g.cfg.Fanout; i++ {
			params = append(params, fmt.Sprintf("var o%d: integer", i))
		}
		fmt.Fprintf(b, "procedure %s(x: integer; %s);\n", name, strings.Join(params, "; "))
		// Locals to receive child outputs.
		var locals []string
		for j := 0; j < g.cfg.Fanout; j++ {
			locals = append(locals, fmt.Sprintf("t%d", j))
		}
		fmt.Fprintf(b, "var %s: integer;\nbegin\n", strings.Join(locals, ", "))
		for i := 0; i < g.cfg.Fanout; i++ {
			child := fmt.Sprintf("%s_%d", name, i)
			fmt.Fprintf(b, "  %s(x + %d", child, i)
			for j := 0; j < g.cfg.Fanout; j++ {
				fmt.Fprintf(b, ", t%d", j)
			}
			b.WriteString(");\n")
			fmt.Fprintf(b, "  o%d := 0", i)
			b.WriteString(";\n")
			for j := 0; j < g.cfg.Fanout; j++ {
				fmt.Fprintf(b, "  o%d := o%d + t%d;\n", i, i, j)
			}
		}
		b.WriteString("end;\n\n")
	}
}

// leaf emits a leaf routine; buggy leaves add a +1 to their first output.
func (g *gen) leaf(b *strings.Builder, name string, buggy bool) {
	if buggy {
		g.bugUnit = name
	}
	body := func(target func(i int) string) {
		if g.cfg.Loops {
			b.WriteString("  acc := 0;\n")
			b.WriteString("  for k := 1 to 3 do\n")
			b.WriteString("    acc := acc + k;\n")
		}
		for i := 0; i < g.cfg.Fanout; i++ {
			expr := fmt.Sprintf("x * %d + %d", i+2, i)
			if g.cfg.Style == Globals {
				expr = fmt.Sprintf("gseed * %d + %d", i+2, i)
			}
			if g.cfg.Loops {
				expr += " + acc"
			}
			if buggy && i == 0 {
				expr += " + 1" // the planted bug
			}
			fmt.Fprintf(b, "  %s := %s;\n", target(i), expr)
		}
	}
	switch g.cfg.Style {
	case Globals:
		fmt.Fprintf(b, "procedure %s;\n", name)
		if g.cfg.Loops {
			b.WriteString("var k, acc: integer;\n")
		}
		b.WriteString("begin\n")
		body(func(i int) string { return globalName(name, i) })
		b.WriteString("end;\n\n")
	default:
		var params []string
		for i := 0; i < g.cfg.Fanout; i++ {
			params = append(params, fmt.Sprintf("var o%d: integer", i))
		}
		fmt.Fprintf(b, "procedure %s(x: integer; %s);\n", name, strings.Join(params, "; "))
		if g.cfg.Loops {
			b.WriteString("var k, acc: integer;\n")
		}
		b.WriteString("begin\n")
		body(func(i int) string { return fmt.Sprintf("o%d", i) })
		b.WriteString("end;\n\n")
	}
}
