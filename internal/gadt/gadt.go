// Package gadt is the top-level facade of the Generalized Algorithmic
// Debugging and Testing system, wiring the paper's three phases
// (Figure 3) into one API:
//
//  1. Transformation phase — side-effect analysis and program
//     transformation to a form without global side-effects
//     (package transform).
//  2. Tracing phase — execution of the transformed program building the
//     execution tree plus the dynamic dependence graph
//     (packages exectree, slicing/dynamic).
//  3. Debugging phase — algorithmic debugging with assertion lookup,
//     category-partition test lookup and program slicing
//     (packages debugger, assertion, tgen).
//
// Typical use:
//
//	sys, err := gadt.Load("bug.pas", source)
//	run, err := sys.Trace("")                       // phases 1–2
//	out, err := run.Debug(oracle, gadt.DebugConfig{ // phase 3
//	    Slicing: true,
//	})
//	if out.Localized() { fmt.Println(out.Reason) }
package gadt

import (
	"fmt"

	"gadt/internal/analysis/lint"
	"gadt/internal/assertion"
	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/obs"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/dynamic"
	"gadt/internal/slicing/static"
	"gadt/internal/transform"
)

// System is a loaded subject program.
type System struct {
	File   string
	Source string

	// Info is the semantic analysis of the original program.
	Info *sem.Info

	// Transformed is the transformation-phase result, computed lazily by
	// Trace (or eagerly by Transform).
	Transformed *transform.Result

	// Metrics and Tracer, when non-nil, observe every phase run through
	// this system: phase spans (parse, sem, transform, trace, debug) and
	// the per-layer counters documented in README.md. Both are nil-safe
	// throughout, so an unobserved system pays nothing.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
}

// Load parses and analyzes a subject program.
func Load(file, source string) (*System, error) {
	return LoadObserved(file, source, nil, nil)
}

// LoadObserved is Load with observability attached: the registry and
// tracer (either may be nil) observe this load and every later phase of
// the returned system.
func LoadObserved(file, source string, m *obs.Registry, t *obs.Tracer) (*System, error) {
	sp := t.Start("parse")
	prog, err := parser.ParseProgram(file, source)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = t.Start("sem")
	info, err := sem.Analyze(prog)
	sp.End()
	if err != nil {
		return nil, err
	}
	return &System{File: file, Source: source, Info: info, Metrics: m, Tracer: t}, nil
}

// Transform runs the transformation phase (idempotent).
func (s *System) Transform() (*transform.Result, error) {
	if s.Transformed != nil {
		return s.Transformed, nil
	}
	sp := s.Tracer.Start("transform")
	res, err := transform.Apply(s.Info)
	sp.End()
	if err != nil {
		return nil, err
	}
	res.RecordMetrics(s.Metrics)
	s.Transformed = res
	return res, nil
}

// TransformedSource renders the transformed program (the internal form
// the user normally never sees, Section 6.1).
func (s *System) TransformedSource() (string, error) {
	res, err := s.Transform()
	if err != nil {
		return "", err
	}
	return printer.Print(res.Program), nil
}

// StaticSlicer builds the SDG-based interprocedural slicer over the
// ORIGINAL program (Section 4).
func (s *System) StaticSlicer() *static.Slicer {
	return static.New(s.Info)
}

// Lint runs the dataflow anomaly checks over the ORIGINAL program.
func (s *System) Lint(opts lint.Options) []lint.Diagnostic {
	sp := s.Tracer.Start("lint")
	diags := lint.RunInfo(s.Info, s.Source, opts)
	sp.End()
	lint.Record(s.Metrics, diags)
	return diags
}

// LintHints aggregates the lint findings into per-unit suspiciousness
// scores for DebugConfig.Hints: the debugger asks about invocations of
// statically anomalous routines first, spending fewer oracle questions
// when an anomaly and the bug coincide — the cheapest oracle question is
// the one never asked.
func (s *System) LintHints() map[string]float64 {
	return lint.Hints(s.Lint(lint.Options{}))
}

// Run is a completed tracing phase: the execution tree of the
// transformed program plus the dynamic dependence graph.
type Run struct {
	System   *System
	Tree     *exectree.Tree
	Recorder *dynamic.Recorder
	Output   string
	RunErr   error // runtime error of the traced execution, if any
	Steps    int
}

// Trace runs phases 1–2: transform (if not yet done) and execute with
// tracing. A runtime error in the subject program is reported in
// Run.RunErr but still yields the partial tree (crashes are debuggable).
func (s *System) Trace(input string) (*Run, error) {
	res, err := s.Transform()
	if err != nil {
		return nil, err
	}
	rec := dynamic.NewRecorder(res.Info)
	sp := s.Tracer.Start("trace")
	tr := exectree.TraceObserved(res.Info, input, s.Metrics, rec)
	sp.End()
	rec.RecordMetrics(s.Metrics)
	return &Run{
		System:   s,
		Tree:     tr.Tree,
		Recorder: rec,
		Output:   tr.Output,
		RunErr:   tr.Err,
		Steps:    tr.Steps,
	}, nil
}

// TraceLimited is Trace under explicit resource budgets: the traced
// execution stops with interp.ErrFuelExhausted after maxSteps statements
// and errors past maxDepth call depth (<= 0 uses interpreter defaults).
// The mutation campaign uses it so a mutant with a planted infinite loop
// yields a bounded partial tree instead of hanging a worker.
func (s *System) TraceLimited(input string, maxSteps, maxDepth int) (*Run, error) {
	res, err := s.Transform()
	if err != nil {
		return nil, err
	}
	rec := dynamic.NewRecorder(res.Info)
	sp := s.Tracer.Start("trace")
	tr := exectree.TraceWith(res.Info, exectree.TraceOpts{
		Input:    input,
		Metrics:  s.Metrics,
		Extra:    []interp.EventSink{rec},
		MaxSteps: maxSteps,
		MaxDepth: maxDepth,
	})
	sp.End()
	rec.RecordMetrics(s.Metrics)
	return &Run{
		System:   s,
		Tree:     tr.Tree,
		Recorder: rec,
		Output:   tr.Output,
		RunErr:   tr.Err,
		Steps:    tr.Steps,
	}, nil
}

// TraceOriginal traces the UNTRANSFORMED program (no loop units, no
// goto/global rewrites). Useful for figure-faithful execution trees of
// programs that are already side-effect free, and for comparisons.
func (s *System) TraceOriginal(input string) *Run {
	rec := dynamic.NewRecorder(s.Info)
	sp := s.Tracer.Start("trace")
	tr := exectree.TraceObserved(s.Info, input, s.Metrics, rec)
	sp.End()
	rec.RecordMetrics(s.Metrics)
	return &Run{
		System:   s,
		Tree:     tr.Tree,
		Recorder: rec,
		Output:   tr.Output,
		RunErr:   tr.Err,
		Steps:    tr.Steps,
	}
}

// DebugConfig selects the debugging-phase components (Section 5.3).
type DebugConfig struct {
	Strategy   debugger.Strategy
	Assertions *assertion.DB
	Tests      debugger.TestLookup
	Slicing    bool
	// MaxQuestions bounds oracle interactions (0 = default).
	MaxQuestions int
	// Hints maps unit names to static suspiciousness scores; see
	// debugger.Options.Hints. Usually System.LintHints().
	Hints map[string]float64
	// NoRootAssumption disables the symptom premise; see
	// debugger.Options.NoRootAssumption.
	NoRootAssumption bool
}

// Debug runs the debugging phase over this trace.
func (r *Run) Debug(oracle debugger.Oracle, cfg DebugConfig) (*debugger.Outcome, error) {
	if r.Tree == nil || r.Tree.Root == nil {
		return nil, fmt.Errorf("gadt: no execution tree (program did not start)")
	}
	opts := debugger.Options{
		Strategy:         cfg.Strategy,
		Assertions:       cfg.Assertions,
		Tests:            cfg.Tests,
		Slicing:          cfg.Slicing,
		Recorder:         r.Recorder,
		Meta:             r.System.Transformed,
		Hints:            cfg.Hints,
		MaxQuestions:     cfg.MaxQuestions,
		Metrics:          r.System.Metrics,
		NoRootAssumption: cfg.NoRootAssumption,
	}
	sp := r.System.Tracer.Start("debug")
	out, err := debugger.New(r.Tree, oracle, opts).Run()
	sp.End()
	return out, err
}

// DebugWithFallback runs the debugging phase and, when the caller's
// verify callback rejects the outcome (the user inspected the localized
// unit and found no bug there — possibly because a stale test report
// absorbed the real culprit), repeats the session without the test
// database: the paper's "if the bug is not localized with this combined
// method we must repeat the debugging without using the test results"
// (Section 5.3.2). Returns the first outcome, the final outcome, and
// whether a retry happened.
func (r *Run) DebugWithFallback(oracle debugger.Oracle, cfg DebugConfig, verify func(*debugger.Outcome) bool) (first, final *debugger.Outcome, retried bool, err error) {
	first, err = r.Debug(oracle, cfg)
	if err != nil {
		return nil, nil, false, err
	}
	if cfg.Tests == nil || (verify != nil && verify(first)) {
		return first, first, false, nil
	}
	cfg.Tests = nil
	final, err = r.Debug(oracle, cfg)
	if err != nil {
		return first, nil, true, err
	}
	return first, final, true, nil
}

// IntendedOracle builds an oracle from a reference ("intended")
// implementation, transformed the same way as the subject so unit names
// line up. The reference must be structurally identical modulo the bug.
func IntendedOracle(refSource string) (debugger.Oracle, error) {
	ref, err := Load("reference.pas", refSource)
	if err != nil {
		return nil, fmt.Errorf("gadt: reference: %w", err)
	}
	tref, err := ref.Transform()
	if err != nil {
		return nil, fmt.Errorf("gadt: reference: %w", err)
	}
	return &debugger.IntendedOracle{Ref: tref.Info}, nil
}

// IntendedOracleLimited is IntendedOracle with a per-query step budget
// on the reference replays, for campaigns over generated programs where
// even the reference could be driven into a long run by extreme inputs.
func IntendedOracleLimited(refSource string, maxSteps int) (debugger.Oracle, error) {
	ref, err := Load("reference.pas", refSource)
	if err != nil {
		return nil, fmt.Errorf("gadt: reference: %w", err)
	}
	tref, err := ref.Transform()
	if err != nil {
		return nil, fmt.Errorf("gadt: reference: %w", err)
	}
	return &debugger.IntendedOracle{Ref: tref.Info, MaxSteps: maxSteps}, nil
}

// IntendedOracleOriginal is IntendedOracle without transformation, for
// debugging untransformed traces.
func IntendedOracleOriginal(refSource string) (debugger.Oracle, error) {
	ref, err := Load("reference.pas", refSource)
	if err != nil {
		return nil, fmt.Errorf("gadt: reference: %w", err)
	}
	return &debugger.IntendedOracle{Ref: ref.Info}, nil
}
