package gadt_test

import (
	"strings"
	"testing"

	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/gadt"
	"gadt/internal/paper"
)

func TestEndToEndSqrtest(t *testing.T) {
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Trace("")
	if err != nil {
		t.Fatal(err)
	}
	if run.RunErr != nil {
		t.Fatalf("run error: %v", run.RunErr)
	}
	if run.Output != "false\n" {
		t.Errorf("output = %q", run.Output)
	}
	oracle, err := gadt.IntendedOracle(paper.SqrtestFixed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Debug(oracle, gadt.DebugConfig{Slicing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement", out.Bug)
	}
	if out.Slices == 0 {
		t.Error("no slicing steps recorded")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := gadt.Load("bad.pas", "not a program"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := gadt.Load("bad.pas", "program t; begin x := 1; end."); err == nil {
		t.Error("expected semantic error")
	}
}

func TestTransformedSource(t *testing.T) {
	sys, err := gadt.Load("g.pas", paper.GlobalSideEffects)
	if err != nil {
		t.Fatal(err)
	}
	src, err := sys.TransformedSource()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "out z: integer") {
		t.Errorf("transformed source missing out param:\n%s", src)
	}
}

func TestTraceOriginalMatchesFigure7(t *testing.T) {
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		t.Fatal(err)
	}
	run := sys.TraceOriginal("")
	if run.Tree.Size() != 14 {
		t.Errorf("original tree size = %d, want 14", run.Tree.Size())
	}
}

func TestCrashedProgramStillDebuggable(t *testing.T) {
	src := `
program t;
var x, y: integer;

procedure setup(var v: integer);
begin
  v := 0; (* bug: should be 2 *)
end;

procedure use(d: integer; var r: integer);
begin
  r := 10 div d;
end;

begin
  setup(x);
  use(x, y);
  writeln(y);
end.`
	sys, err := gadt.Load("crash.pas", src)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Trace("")
	if err != nil {
		t.Fatal(err)
	}
	if run.RunErr == nil {
		t.Fatal("expected a runtime error (division by zero)")
	}
	// The partial tree still contains setup with its wrong output; a
	// scripted oracle localizes it.
	oracle := &debugger.ScriptedOracle{
		ByUnit: map[string]debugger.Answer{
			"setup": {Verdict: debugger.Incorrect},
			"use":   {Verdict: debugger.Correct},
		},
		Default: debugger.Answer{Verdict: debugger.DontKnow},
	}
	out, err := run.Debug(oracle, gadt.DebugConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "setup" {
		t.Fatalf("bug = %v, want setup", out.Bug)
	}
}

func TestStaticSlicerAccessor(t *testing.T) {
	sys, err := gadt.Load("p.pas", paper.SliceExample)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.StaticSlicer()
	if s == nil || s.SDG == nil {
		t.Fatal("no slicer")
	}
}

// TestMisnamedVariableArgument reproduces the paper's Section 5.3.3
// question: the bug is a wrong variable passed at a call site; every
// subcomputation is correct on its actual inputs, so the error is
// correctly localized to the calling unit (here the program body).
func TestMisnamedVariableArgument(t *testing.T) {
	buggy := `
program t;
var x, y, r: integer;

procedure compute(a: integer; var res: integer);
begin
  res := a * 2;
end;

begin
  x := 3;
  y := 10;
  compute(y, r); (* bug: should pass x *)
  writeln(r);
end.`
	fixed := strings.Replace(buggy, "compute(y, r); (* bug: should pass x *)", "compute(x, r);", 1)
	sys, err := gadt.Load("misnamed.pas", buggy)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Trace("")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := gadt.IntendedOracle(fixed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Debug(oracle, gadt.DebugConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// compute(10) = 20 is correct per its own specification, so the bug
	// lands in the caller: the program body.
	if !out.Localized() || !out.Bug.IsRoot() {
		t.Fatalf("bug = %v, want the program body", out.Bug)
	}
	// With the symptom premise disabled the same search is inconclusive.
	out2, err := run.Debug(oracle, gadt.DebugConfig{NoRootAssumption: true})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Localized() {
		t.Fatalf("bug = %v, want inconclusive without the root assumption", out2.Bug)
	}
}

// staleTests simulates an outdated test database vouching for a unit
// that has since become buggy.
type staleTests struct{ unit string }

func (s staleTests) Judge(n *exectree.Node) debugger.Verdict {
	if n.Unit.Name == s.unit {
		return debugger.Correct
	}
	return debugger.DontKnow
}

// TestDebugWithFallback reproduces the paper's last resort in Section
// 5.3.2: a stale passing report absorbs the real culprit and the first
// session localizes the wrong unit; repeating without the test database
// finds the actual bug.
func TestDebugWithFallback(t *testing.T) {
	buggy := `
program t;
var res: integer;

procedure leaf(x: integer; var r: integer);
begin
  r := x * 2 + 1; (* bug: the +1 *)
end;

procedure mid(x: integer; var r: integer);
var t: integer;
begin
  leaf(x, t);
  r := t + 3;
end;

begin
  mid(5, res);
  writeln(res);
end.`
	fixed := strings.Replace(buggy, "r := x * 2 + 1; (* bug: the +1 *)", "r := x * 2;", 1)
	sys, err := gadt.Load("buggy.pas", buggy)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Trace("")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := gadt.IntendedOracle(fixed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gadt.DebugConfig{Tests: staleTests{unit: "leaf"}}
	verify := func(o *debugger.Outcome) bool {
		// The "user" inspects the localized body and only accepts leaf
		// (where the bug really is).
		return o.Localized() && o.Bug.Unit.Name == "leaf"
	}
	first, final, retried, err := run.DebugWithFallback(oracle, cfg, verify)
	if err != nil {
		t.Fatal(err)
	}
	if !retried {
		t.Fatal("expected a retry without the test database")
	}
	if !first.Localized() || first.Bug.Unit.Name != "mid" {
		t.Fatalf("first bug = %v, want mid (stale report shields leaf)", first.Bug)
	}
	if !final.Localized() || final.Bug.Unit.Name != "leaf" {
		t.Fatalf("final bug = %v, want leaf", final.Bug)
	}
}

func TestDebugWithFallbackNoRetryWhenAccepted(t *testing.T) {
	sys, err := gadt.Load("s.pas", paper.Sqrtest)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Trace("")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := gadt.IntendedOracle(paper.SqrtestFixed)
	if err != nil {
		t.Fatal(err)
	}
	first, final, retried, err := run.DebugWithFallback(oracle,
		gadt.DebugConfig{Tests: staleTests{unit: "arrsum"}},
		func(o *debugger.Outcome) bool { return o.Localized() && o.Bug.Unit.Name == "decrement" })
	if err != nil {
		t.Fatal(err)
	}
	if retried || first != final {
		t.Error("unnecessary retry")
	}
}

func TestDebugStrategiesAgree(t *testing.T) {
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := gadt.IntendedOracle(paper.SqrtestFixed)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []debugger.Strategy{debugger.TopDown, debugger.DivideAndQuery, debugger.BottomUp} {
		run, err := sys.Trace("")
		if err != nil {
			t.Fatal(err)
		}
		out, err := run.Debug(oracle, gadt.DebugConfig{Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !out.Localized() || out.Bug.Unit.Name != "decrement" {
			t.Errorf("%v localized %v, want decrement", strat, out.Bug)
		}
	}
}
