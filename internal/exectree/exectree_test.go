package exectree_test

import (
	"strings"
	"testing"

	"gadt/internal/exectree"
	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func trace(t *testing.T, src, input string) *exectree.TraceResult {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	res := exectree.Trace(info, input)
	if res.Err != nil {
		t.Fatalf("trace: %v", res.Err)
	}
	return res
}

// TestFigure7 reproduces the execution tree of the paper's Figure 7.
func TestFigure7(t *testing.T) {
	res := trace(t, paper.Sqrtest, "")
	tree := res.Tree
	// Main + 13 calls.
	if tree.Size() != 14 {
		t.Fatalf("tree size = %d, want 14\n%s", tree.Size(), tree)
	}
	root := tree.Root
	if root.Unit.Name != "main" || len(root.Children) != 1 {
		t.Fatalf("root = %v with %d children", root.Unit.Name, len(root.Children))
	}
	sq := root.Children[0]
	if sq.Unit.Name != "sqrtest" {
		t.Fatalf("child = %s, want sqrtest", sq.Unit.Name)
	}
	childNames := func(n *exectree.Node) []string {
		var out []string
		for _, c := range n.Children {
			out = append(out, c.Unit.Name)
		}
		return out
	}
	wantEq := func(got []string, want ...string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("children = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("children = %v, want %v", got, want)
			}
		}
	}
	wantEq(childNames(sq), "arrsum", "computs", "test")
	computs := sq.Children[1]
	wantEq(childNames(computs), "comput1", "comput2")
	comput1 := computs.Children[0]
	wantEq(childNames(comput1), "partialsums", "add")
	partial := comput1.Children[0]
	wantEq(childNames(partial), "sum1", "sum2")
	wantEq(childNames(partial.Children[0]), "increment")
	wantEq(childNames(partial.Children[1]), "decrement")
	wantEq(childNames(computs.Children[1]), "square")

	// Paper labels.
	for _, want := range []string{
		"sqrtest(In ary: [1, 2], In n: 2, Out isok: false)",
		"arrsum(In a: [1, 2], In n: 2, Out b: 3)",
		"computs(In y: 3, Out r1: 12, Out r2: 9)",
		"test(In r1: 12, In r2: 9, Out isok: false)",
		"partialsums(In y: 3, Out s1: 6, Out s2: 6)",
		"add(In s1: 6, In s2: 6, Out r1: 12)",
		"decrement(In y: 3) = 4",
		"increment(In y: 3) = 4",
		"square(In y: 3, Out r2: 9)",
	} {
		if !strings.Contains(tree.String(), want) {
			t.Errorf("tree missing label %q:\n%s", want, tree)
		}
	}
	if res.Output != "false\n" {
		t.Errorf("program output = %q", res.Output)
	}
}

func TestNodeBindings(t *testing.T) {
	res := trace(t, paper.Sqrtest, "")
	var computs *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		if n.Unit.Name == "computs" {
			computs = n
		}
		return true
	})
	if computs == nil {
		t.Fatal("computs not traced")
	}
	in, ok := computs.InBinding("y")
	if !ok || !interp.ValuesEqual(in.Value, interp.IntV(3)) {
		t.Errorf("computs In y = %v (%v)", in.Value, ok)
	}
	out, ok := computs.OutBinding("r1")
	if !ok || !interp.ValuesEqual(out.Value, interp.IntV(12)) {
		t.Errorf("computs Out r1 = %v (%v)", out.Value, ok)
	}
	names := computs.OutputNames()
	if len(names) != 2 || names[0] != "r1" || names[1] != "r2" {
		t.Errorf("output names = %v", names)
	}
}

func TestRecursionTree(t *testing.T) {
	res := trace(t, `
program t;
var x: integer;
function fact(n: integer): integer;
begin
  if n <= 1 then fact := 1
  else fact := n * fact(n - 1);
end;
begin
  x := fact(3);
  writeln(x);
end.`, "")
	// main + fact(3) + fact(2) + fact(1) = 4 nodes, linear chain.
	if res.Tree.Size() != 4 {
		t.Fatalf("size = %d, want 4\n%s", res.Tree.Size(), res.Tree)
	}
	n := res.Tree.Root
	depth := 0
	for len(n.Children) == 1 {
		n = n.Children[0]
		depth++
	}
	if depth != 3 || len(n.Children) != 0 {
		t.Errorf("not a 3-deep chain:\n%s", res.Tree)
	}
}

func TestIncompleteOnRuntimeError(t *testing.T) {
	prog := parser.MustParse("t.pas", `
program t;
var x: integer;
procedure boom(var r: integer);
begin
  r := 1 div 0;
end;
begin
  boom(x);
end.`)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(info, "")
	if res.Err == nil {
		t.Fatal("expected runtime error")
	}
	if res.Tree.Size() != 2 {
		t.Fatalf("partial tree size = %d, want 2", res.Tree.Size())
	}
	// ExitCall does fire for the failing frames (exit side effects are
	// recorded), but the root remains visible; check the error carries
	// position info.
	if !strings.Contains(res.Err.Error(), "division by zero") {
		t.Errorf("err = %v", res.Err)
	}
}

func TestNodeByIDAndWalkPruning(t *testing.T) {
	res := trace(t, paper.PQR, "")
	for _, n := range res.Tree.Nodes {
		if res.Tree.NodeByID(n.ID) != n {
			t.Fatalf("NodeByID(%d) mismatch", n.ID)
		}
	}
	// Walk with pruning: skip the subtree under p.
	var visited []string
	res.Tree.Walk(func(n *exectree.Node) bool {
		visited = append(visited, n.Unit.Name)
		return n.Unit.Name != "p"
	})
	for _, name := range visited {
		if name == "q" || name == "r" {
			t.Errorf("pruned walk visited %s", name)
		}
	}
}

func TestRenderWithModesOverride(t *testing.T) {
	res := trace(t, paper.PQR, "")
	var b strings.Builder
	// Force q's var param b to display as a value parameter: it then
	// shows its entry value under In.
	res.Tree.Render(&b, nil, func(n *exectree.Node) map[string]ast.ParamMode {
		if n.Unit.Name == "q" {
			return map[string]ast.ParamMode{"b": ast.Value}
		}
		return nil
	})
	if !strings.Contains(b.String(), "q(In a: 5, In b: 0, Out b: 10)") {
		t.Errorf("override rendering:\n%s", b.String())
	}
}

func TestLabelWithNilModes(t *testing.T) {
	res := trace(t, paper.PQR, "")
	var q *exectree.Node
	res.Tree.Walk(func(n *exectree.Node) bool {
		if n.Unit.Name == "q" {
			q = n
		}
		return true
	})
	if got := q.Label(nil); got != "q(In a: 5, Out b: 10)" {
		t.Errorf("label = %q", got)
	}
}

func TestTraceOutputCapture(t *testing.T) {
	res := trace(t, paper.PQR, "")
	if res.Output != "10 6\n" {
		t.Errorf("output = %q", res.Output)
	}
	if res.Steps == 0 {
		t.Error("no steps counted")
	}
}
