package exectree_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gadt/internal/exectree"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderGoldenSqrtest pins the text rendering of the sqrtest
// execution tree: the journal/replay machinery and the figure
// reproductions both rely on tree construction and rendering being
// byte-for-byte deterministic across runs.
func TestRenderGoldenSqrtest(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "sqrtest.pas"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("..", "..", "testdata", "sqrtest_tree.golden")

	render := func() []byte {
		prog := parser.MustParse("sqrtest.pas", string(src))
		info, err := sem.Analyze(prog)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		res := exectree.Trace(info, "")
		if res.Err != nil {
			t.Fatalf("trace: %v", res.Err)
		}
		var buf bytes.Buffer
		res.Tree.Render(&buf, nil, nil)
		return buf.Bytes()
	}

	got := render()
	if again := render(); !bytes.Equal(got, again) {
		t.Fatalf("rendering is not deterministic:\n--- first ---\n%s--- second ---\n%s", got, again)
	}

	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("rendered tree differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
