// Package exectree implements the paper's tracing phase (Section 5.2):
// executing the (transformed) program builds an execution tree whose
// nodes record, for every unit invocation, the input parameter values at
// entry and the output parameter values (and function result) at exit.
package exectree

import (
	"fmt"
	"io"
	"strings"

	"gadt/internal/obs"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/sem"
)

// Node is one unit invocation in the execution tree.
type Node struct {
	ID       int64
	Unit     *sem.Routine
	CallSite ast.Node
	Parent   *Node
	Children []*Node
	Depth    int

	Ins    []interp.Binding
	Outs   []interp.Binding
	Result interp.Value

	// Steps counts the statements executed directly by this invocation
	// (statements of callees are charged to their own nodes). It is the
	// per-node cost the weighted divide-and-query strategy uses.
	Steps int64

	// Location bookkeeping for dynamic slicing.
	ArgLocs   []interp.Loc
	ParamLocs []interp.Loc
	ResultLoc interp.Loc

	// Incomplete marks nodes whose invocation did not finish (a runtime
	// error unwound through them).
	Incomplete bool
}

// IsRoot reports whether the node is the program-block invocation.
func (n *Node) IsRoot() bool { return n.Parent == nil }

// Label renders the node the way the paper's figures do:
// `arrsum(In a: [1, 2], In n: 2, Out b: 3)`; functions append `= result`.
// Value parameters display their entry value, var/out parameters their
// exit value. The modes map lets callers override the displayed mode per
// parameter name (used for transformed globals); it may be nil.
func (n *Node) Label(modes map[string]ast.ParamMode) string {
	var parts []string
	for _, b := range n.Ins {
		mode := b.Mode
		if modes != nil {
			if m, ok := modes[b.Name]; ok {
				mode = m
			}
		}
		if mode == ast.Value {
			parts = append(parts, fmt.Sprintf("In %s: %s", b.Name, interp.FormatValue(b.Value)))
		}
	}
	for _, b := range n.Outs {
		parts = append(parts, fmt.Sprintf("Out %s: %s", b.Name, interp.FormatValue(b.Value)))
	}
	s := n.Unit.Name
	if len(parts) > 0 {
		s += "(" + strings.Join(parts, ", ") + ")"
	}
	if n.Unit.Kind == ast.FuncKind {
		s += " = " + interp.FormatValue(n.Result)
	}
	return s
}

// InBinding returns the entry binding with the given name, if any.
func (n *Node) InBinding(name string) (interp.Binding, bool) {
	for _, b := range n.Ins {
		if b.Name == name {
			return b, true
		}
	}
	return interp.Binding{}, false
}

// OutBinding returns the exit binding with the given name, if any.
func (n *Node) OutBinding(name string) (interp.Binding, bool) {
	for _, b := range n.Outs {
		if b.Name == name {
			return b, true
		}
	}
	return interp.Binding{}, false
}

// OutputNames lists the node's output names in order (var/out parameters
// then the function-result pseudo-name, which is the unit name).
func (n *Node) OutputNames() []string {
	var names []string
	for _, b := range n.Outs {
		names = append(names, b.Name)
	}
	if n.Unit.Kind == ast.FuncKind {
		names = append(names, n.Unit.Name)
	}
	return names
}

// Tree is a complete execution tree.
type Tree struct {
	Root  *Node
	Nodes []*Node // pre-order
	byID  map[int64]*Node
}

// NodeByID looks a node up by its invocation ID.
func (t *Tree) NodeByID(id int64) *Node { return t.byID[id] }

// Size returns the number of nodes.
func (t *Tree) Size() int { return len(t.Nodes) }

// Walk visits nodes in pre-order; returning false skips the subtree.
func (t *Tree) Walk(f func(*Node) bool) {
	var rec func(n *Node)
	rec = func(n *Node) {
		if !f(n) {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
}

// Render prints the tree in indented form (Figure 7 style). keep, when
// non-nil, filters nodes (pruned nodes and their subtrees are elided).
func (t *Tree) Render(w io.Writer, keep func(*Node) bool, modes func(*Node) map[string]ast.ParamMode) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if keep != nil && !keep(n) {
			return
		}
		var m map[string]ast.ParamMode
		if modes != nil {
			m = modes(n)
		}
		fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", depth), n.Label(m))
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	if t.Root != nil {
		rec(t.Root, 0)
	}
}

// String renders the full tree with default labels.
func (t *Tree) String() string {
	var b strings.Builder
	t.Render(&b, nil, nil)
	return b.String()
}

// Builder constructs a Tree from interpreter events; it implements
// interp.EventSink (Read/Write are ignored — see slicing/dynamic for
// the dependence recorder; Stmt only charges the open call's step cost).
type Builder struct {
	interp.NopSink
	root  *Node
	stack []*Node
	nodes []*Node
	byID  map[int64]*Node
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byID: make(map[int64]*Node)}
}

var _ interp.EventSink = (*Builder)(nil)

// EnterCall implements interp.EventSink.
func (b *Builder) EnterCall(ci *interp.CallInfo) {
	n := &Node{
		ID:         ci.ID,
		Unit:       ci.Routine,
		CallSite:   ci.CallSite,
		Depth:      ci.Depth,
		Ins:        append([]interp.Binding(nil), ci.Ins...),
		ArgLocs:    append([]interp.Loc(nil), ci.ArgLocs...),
		ParamLocs:  append([]interp.Loc(nil), ci.ParamLocs...),
		ResultLoc:  ci.ResultLoc,
		Incomplete: true,
	}
	if len(b.stack) > 0 {
		parent := b.stack[len(b.stack)-1]
		n.Parent = parent
		parent.Children = append(parent.Children, n)
	} else {
		b.root = n
	}
	b.stack = append(b.stack, n)
	b.nodes = append(b.nodes, n)
	b.byID[n.ID] = n
}

// ExitCall implements interp.EventSink.
func (b *Builder) ExitCall(ci *interp.CallInfo) {
	if len(b.stack) == 0 {
		return
	}
	n := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	if n.ID != ci.ID {
		// Mismatched exit (should not happen); keep the tree consistent.
		return
	}
	n.Outs = append([]interp.Binding(nil), ci.Outs...)
	n.Result = ci.Result
	n.Incomplete = false
}

// Stmt implements interp.EventSink: each executed statement is charged
// to the innermost open invocation as its step cost.
func (b *Builder) Stmt(ast.Stmt, *sem.Routine) {
	if len(b.stack) > 0 {
		b.stack[len(b.stack)-1].Steps++
	}
}

// Tree finalizes and returns the built tree. Safe to call after a failed
// run: nodes still on the stack stay marked Incomplete.
func (b *Builder) Tree() *Tree {
	return &Tree{Root: b.root, Nodes: b.nodes, byID: b.byID}
}

// Current returns the node currently executing (innermost open call).
func (b *Builder) Current() *Node {
	if len(b.stack) == 0 {
		return nil
	}
	return b.stack[len(b.stack)-1]
}

// TraceResult bundles a built tree with the run outcome.
type TraceResult struct {
	Tree   *Tree
	Output string
	Err    error // runtime error, if the program failed
	Steps  int
}

// Trace executes an analyzed program and builds its execution tree.
// Extra sinks (e.g. the dynamic dependence recorder) receive the same
// event stream. A runtime error does not discard the partial tree.
func Trace(info *sem.Info, input string, extra ...interp.EventSink) *TraceResult {
	return TraceObserved(info, input, nil, extra...)
}

// TraceObserved is Trace with metrics: the registry (nil allowed)
// receives the interpreter's execution counters plus the tree-shape
// gauges exectree.nodes and exectree.depth.max.
func TraceObserved(info *sem.Info, input string, metrics *obs.Registry, extra ...interp.EventSink) *TraceResult {
	return TraceWith(info, TraceOpts{Input: input, Metrics: metrics, Extra: extra})
}

// TraceOpts configures TraceWith beyond the common defaults.
type TraceOpts struct {
	Input   string
	Metrics *obs.Registry
	Extra   []interp.EventSink

	// MaxSteps and MaxDepth bound the traced execution (<= 0 uses the
	// interpreter defaults). The mutation campaign sets tight budgets so
	// mutants with planted infinite loops or runaway recursion stop with
	// interp.ErrFuelExhausted (resp. a depth error) and a bounded tree
	// instead of hanging the worker.
	MaxSteps int
	MaxDepth int
}

// TraceWith executes an analyzed program under explicit resource limits
// and builds its execution tree. A resource-limit or runtime error does
// not discard the partial tree.
func TraceWith(info *sem.Info, o TraceOpts) *TraceResult {
	b := NewBuilder()
	sinks := append(interp.MultiSink{b}, o.Extra...)
	var out strings.Builder
	metrics := o.Metrics
	it := interp.New(info, interp.Config{
		Input:    strings.NewReader(o.Input),
		Output:   &out,
		Sink:     sinks,
		Metrics:  metrics,
		MaxSteps: o.MaxSteps,
		MaxDepth: o.MaxDepth,
	})
	err := it.Run()
	tree := b.Tree()
	if metrics != nil {
		maxDepth := 0
		tree.Walk(func(n *Node) bool {
			if n.Depth > maxDepth {
				maxDepth = n.Depth
			}
			return true
		})
		metrics.Counter("exectree.traces").Inc()
		metrics.Gauge("exectree.nodes").Set(int64(tree.Size()))
		metrics.Gauge("exectree.nodes.max").SetMax(int64(tree.Size()))
		metrics.Gauge("exectree.depth.max").SetMax(int64(maxDepth))
	}
	return &TraceResult{Tree: tree, Output: out.String(), Err: err, Steps: it.Steps()}
}
