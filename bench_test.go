// Benchmarks regenerating the paper's figures and quantitative claims
// (see DESIGN.md's per-experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark is named for the figure/table/session it exercises.
package gadt_test

import (
	"fmt"
	"testing"
	"time"

	"gadt/internal/analysis/lint"
	"gadt/internal/assertion"
	"gadt/internal/campaign"
	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/gadt"
	"gadt/internal/paper"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/perfbench"
	"gadt/internal/progen"
	"gadt/internal/slicing/static"
	"gadt/internal/slicing/weiser"
	"gadt/internal/tgen"
	"gadt/internal/transform"
)

// --- front-end substrate ---------------------------------------------------

func BenchmarkParseSqrtest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := parser.ParseProgram("sqrtest.pas", paper.Sqrtest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeSqrtest(b *testing.B) {
	prog := parser.MustParse("sqrtest.pas", paper.Sqrtest)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sem.Analyze(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// --- S9: transformation phase ----------------------------------------------

func benchTransform(b *testing.B, src string) {
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transform.Apply(info); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformSqrtest(b *testing.B)    { benchTransform(b, paper.Sqrtest) }
func BenchmarkTransformGlobalGoto(b *testing.B) { benchTransform(b, paper.GlobalGoto) }

func BenchmarkTransformGrowthSynthetic(b *testing.B) {
	p := progen.Generate(progen.Config{Depth: 4, Fanout: 2, Style: progen.Globals, Loops: true})
	benchTransform(b, p.Buggy)
}

// --- F7: tracing phase -----------------------------------------------------

func BenchmarkTraceSqrtest(b *testing.B) {
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Transform(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := sys.Trace("")
		if err != nil || run.RunErr != nil {
			b.Fatalf("%v / %v", err, run.RunErr)
		}
	}
}

func BenchmarkTraceSynthetic(b *testing.B) {
	for _, depth := range []int{3, 5, 7} {
		p := progen.Generate(progen.Config{Depth: depth, Fanout: 2})
		sys, err := gadt.Load("synth.pas", p.Buggy)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := sys.TraceOriginal("")
				if run.RunErr != nil {
					b.Fatal(run.RunErr)
				}
			}
		})
	}
}

// --- interpreter-bound hot paths -------------------------------------------
//
// The workload definitions live in internal/perfbench so cmd/interp-bench
// (the BENCH_interp.json generator) measures exactly what these track.

// BenchmarkInterpIntLoop measures raw interpreter throughput on the
// integer-heavy loop (ns/op, B/op, allocs/op are the tracked numbers in
// BENCH_interp.json).
func BenchmarkInterpIntLoop(b *testing.B) {
	perfbench.IntLoop()(b)
}

// BenchmarkInterpRecursion measures interpreter call overhead on the
// doubly-recursive Fibonacci workload (the denominator of the VM
// recursion speedup in BENCH_vm.json).
func BenchmarkInterpRecursion(b *testing.B) {
	perfbench.Recursion()(b)
}

// BenchmarkInterpProgen measures whole-program interpretation of seeded
// progen subjects of graded size, without tracing sinks: the cost the
// mutation campaign and differential harness pay per evaluation.
func BenchmarkInterpProgen(b *testing.B) {
	for _, depth := range perfbench.ProgenDepths {
		body := perfbench.Progen(depth)
		b.Run(fmt.Sprintf("depth=%d", depth), body)
	}
}

// BenchmarkVMIntLoop / BenchmarkVMRecursion / BenchmarkVMProgen are the
// bytecode-VM counterparts of the interpreter workloads above: same
// sources, compiled once, executed per iteration. Their ratios against
// the Interp benchmarks are the speedups recorded in BENCH_vm.json and
// gated in CI (vm-bench job).
func BenchmarkVMIntLoop(b *testing.B) {
	perfbench.VMIntLoop()(b)
}

func BenchmarkVMRecursion(b *testing.B) {
	perfbench.VMRecursion()(b)
}

func BenchmarkVMProgen(b *testing.B) {
	for _, depth := range perfbench.ProgenDepths {
		body := perfbench.VMProgen(depth)
		b.Run(fmt.Sprintf("depth=%d", depth), body)
	}
}

// BenchmarkCampaignEval measures the fixed-seed mutation campaign end to
// end on one worker: mutant evaluation is interpreter-bound, so this is
// the campaign-level view of the same hot path.
func BenchmarkCampaignEval(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(campaign.Config{
			Seed:    1,
			Budget:  24,
			Workers: 1,
			Timeout: time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Mutants != 24 {
			b.Fatalf("evaluated %d mutants, want 24", rep.Mutants)
		}
	}
}

// --- F1: T-GEN -------------------------------------------------------------

func BenchmarkTGenFrames(b *testing.B) {
	spec := tgen.MustParseSpec(paper.ArrsumSpec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if frames := spec.Generate(); len(frames) != 8 {
			b.Fatalf("frames = %d", len(frames))
		}
	}
}

func BenchmarkTGenClassify(b *testing.B) {
	spec := tgen.MustParseSpec(paper.ArrsumSpec)
	sys, err := gadt.Load("s.pas", paper.Sqrtest)
	if err != nil {
		b.Fatal(err)
	}
	run := sys.TraceOriginal("")
	var arrsum *exectree.Node
	run.Tree.Walk(func(n *exectree.Node) bool {
		if n.Unit.Name == "arrsum" {
			arrsum = n
		}
		return true
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Classify(arrsum.Ins, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F2 + interprocedural: static slicing ----------------------------------

func BenchmarkSDGBuildSqrtest(b *testing.B) {
	prog := parser.MustParse("s.pas", paper.Sqrtest)
	info, err := sem.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		static.New(info)
	}
}

func BenchmarkStaticSliceF2(b *testing.B) {
	prog := parser.MustParse("p.pas", paper.SliceExample)
	info, err := sem.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	s := static.New(info)
	mul := static.LookupVar(info, info.Main, "mul")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sl := s.OnVarAtEnd(info.Main, mul); sl.StmtCount() == 0 {
			b.Fatal("empty slice")
		}
	}
}

func BenchmarkStaticSliceInterprocedural(b *testing.B) {
	prog := parser.MustParse("s.pas", paper.Sqrtest)
	info, err := sem.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	s := static.New(info)
	ps := info.LookupRoutine("partialsums")
	var s2 *sem.VarSym
	for _, p := range ps.Params {
		if p.Name == "s2" {
			s2 = p
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.OnOutput(ps, s2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F8/F9: dynamic slicing ------------------------------------------------

func benchDynamicSlice(b *testing.B, unit, output string) {
	sys, err := gadt.Load("s.pas", paper.Sqrtest)
	if err != nil {
		b.Fatal(err)
	}
	run := sys.TraceOriginal("")
	var target *exectree.Node
	run.Tree.Walk(func(n *exectree.Node) bool {
		if target == nil && n.Unit.Name == unit {
			target = n
		}
		return true
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run.Recorder.SliceOnOutput(run.Tree, target, output); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicSliceF8(b *testing.B) { benchDynamicSlice(b, "computs", "r1") }
func BenchmarkDynamicSliceF9(b *testing.B) { benchDynamicSlice(b, "partialsums", "s2") }

// --- S3/S8 + strategy ablation: debugging sessions --------------------------

func benchDebug(b *testing.B, strat debugger.Strategy, slicing, tests bool) {
	sys, err := gadt.Load("s.pas", paper.Sqrtest)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := gadt.IntendedOracleOriginal(paper.SqrtestFixed)
	if err != nil {
		b.Fatal(err)
	}
	var lookup debugger.TestLookup
	if tests {
		l, err := buildArrsumLookup()
		if err != nil {
			b.Fatal(err)
		}
		lookup = l
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := sys.TraceOriginal("")
		out, err := run.Debug(oracle, gadt.DebugConfig{Strategy: strat, Slicing: slicing, Tests: lookup})
		if err != nil {
			b.Fatal(err)
		}
		if !out.Localized() || out.Bug.Unit.Name != "decrement" {
			b.Fatalf("bug = %v", out.Bug)
		}
	}
}

func buildArrsumLookup() (*tgen.Lookup, error) {
	sys, err := gadt.Load("a.pas", paper.ArrsumProgram)
	if err != nil {
		return nil, err
	}
	spec := tgen.MustParseSpec(paper.ArrsumSpec)
	check := assertion.MustParse("arrsum", "b = sum(a, n)")
	runner := &tgen.Runner{
		Info: sys.Info,
		Spec: spec,
		Gen:  tgen.SearchGenerator(sys.Info, spec, 5000),
		Chk: func(_ *tgen.Frame, ci *interp.CallInfo) bool {
			env := assertion.Env{}
			for _, bd := range ci.Ins {
				env[bd.Name] = bd.Value
			}
			for _, bd := range ci.Outs {
				env[bd.Name] = bd.Value
			}
			return check.Eval(env) == assertion.Holds
		},
	}
	db, err := runner.RunAll()
	if err != nil {
		return nil, err
	}
	return &tgen.Lookup{Spec: spec, DB: db}, nil
}

func BenchmarkDebugPureAD(b *testing.B)         { benchDebug(b, debugger.TopDown, false, false) }
func BenchmarkDebugWithSlicing(b *testing.B)    { benchDebug(b, debugger.TopDown, true, false) }
func BenchmarkDebugGADT(b *testing.B)           { benchDebug(b, debugger.TopDown, true, true) }
func BenchmarkDebugDivideAndQuery(b *testing.B) { benchDebug(b, debugger.DivideAndQuery, false, false) }
func BenchmarkDebugBottomUp(b *testing.B)       { benchDebug(b, debugger.BottomUp, false, false) }

func BenchmarkDebugSynthetic(b *testing.B) {
	for _, depth := range []int{3, 5} {
		p := progen.Generate(progen.Config{Depth: depth, Fanout: 2, BugPath: []int{1, 0, 1, 0, 1}})
		sys, err := gadt.Load("synth.pas", p.Buggy)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := gadt.IntendedOracleOriginal(p.Fixed)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := sys.TraceOriginal("")
				out, err := run.Debug(oracle, gadt.DebugConfig{Slicing: true})
				if err != nil || !out.Localized() {
					b.Fatalf("%v / %v", err, out)
				}
			}
		})
	}
}

// --- plint: dataflow anomaly diagnostics ------------------------------------

func benchLint(b *testing.B, src string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lint.Run("b.pas", src, lint.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLintSqrtest(b *testing.B) { benchLint(b, paper.Sqrtest) }

func BenchmarkLintSynthetic(b *testing.B) {
	p := progen.Generate(progen.Config{Depth: 5, Fanout: 2, Style: progen.Globals, Loops: true})
	benchLint(b, p.Buggy)
}

func BenchmarkWeiserSliceF2(b *testing.B) {
	prog := parser.MustParse("p.pas", paper.SliceExample)
	info, err := sem.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	mul := static.LookupVar(info, info.Main, "mul")
	w := &weiser.Slicer{Info: info}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.OnVarAtEnd(info.Main, mul); err != nil {
			b.Fatal(err)
		}
	}
}
