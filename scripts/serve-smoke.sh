#!/bin/sh
# serve-smoke: boot gadt-serve, drive one complete debugging session
# with curl by replaying the checked-in CLI journal, and scrape the ops
# surface. Proves the binary end to end: HTTP wiring, the journal wire
# format, the cache counters and the metrics endpoint.
#
# Usage: scripts/serve-smoke.sh [outdir]   (default: serve-smoke-out)
#
# Exit nonzero on any failed step. The transcript of every request and
# response lands in $OUT/transcript.txt (CI uploads the directory).
set -eu

OUT=${1:-serve-smoke-out}
GO=${GO:-go}
JOURNAL=testdata/serve/sqrtest_session.jsonl
CREATE=testdata/serve/sqrtest_create.json

mkdir -p "$OUT"
TRANSCRIPT=$OUT/transcript.txt
: > "$TRANSCRIPT"

say() { printf '%s\n' "$*" | tee -a "$TRANSCRIPT"; }

say "== build =="
$GO build -o "$OUT/gadt-serve" ./cmd/gadt-serve

say "== start =="
"$OUT/gadt-serve" -addr 127.0.0.1:0 -port-file "$OUT/port" \
    2>> "$TRANSCRIPT" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the port file (the server writes it once the listener is up).
i=0
while [ ! -s "$OUT/port" ]; do
    i=$((i + 1))
    [ $i -gt 100 ] && { say "server never wrote $OUT/port"; exit 1; }
    sleep 0.1
done
BASE="http://$(cat "$OUT/port")"
say "server at $BASE"

# curl wrapper: logs the exchange, fails the script on transport errors.
req() { # req NAME METHOD PATH [BODY-FILE]
    name=$1 method=$2 path=$3 body=${4:-}
    {
        echo "--- $name: $method $path"
        if [ -n "$body" ]; then
            curl -sS -X "$method" -H 'Content-Type: application/json' \
                --data-binary "@$body" "$BASE$path"
        else
            curl -sS -X "$method" "$BASE$path"
        fi
        echo
    } >> "$TRANSCRIPT"
}

say "== health =="
health=$(curl -sS "$BASE/healthz")
echo "/healthz: $health" >> "$TRANSCRIPT"
[ "$health" = "ok" ] || { say "/healthz said: $health"; exit 1; }

say "== create session =="
req create POST /v1/sessions "$CREATE"
SID=$(grep -o '"id": *"s-[0-9a-f]*"' "$TRANSCRIPT" | head -1 | grep -o 's-[0-9a-f]*')
[ -n "$SID" ] || { say "no session id in create response"; exit 1; }
say "session $SID"

say "== replay journal answers =="
n=0
grep '"kind":"query"' "$JOURNAL" | while IFS= read -r line; do
    printf '%s' "$line" > "$OUT/answer.json"
    req "answer" POST "/v1/sessions/$SID/answer" "$OUT/answer.json"
done
n=$(grep -c '"kind":"query"' "$JOURNAL")
say "replayed $n answers"

say "== diagnosis =="
req final GET "/v1/sessions/$SID"
grep -q '"state": *"localized"' "$TRANSCRIPT" ||
    { say "session did not localize (see $TRANSCRIPT)"; exit 1; }
grep -q '"unit": *"decrement"' "$TRANSCRIPT" ||
    { say "diagnosis is not decrement (see $TRANSCRIPT)"; exit 1; }
say "localized decrement"

say "== metrics =="
curl -sS "$BASE/metrics" > "$OUT/metrics.txt"
for series in \
    'serve_requests{endpoint="sessions.create"}' \
    'serve_requests{endpoint="sessions.answer"}' \
    'serve_cache_misses{layer="artifact"}' \
    'serve_sessions_created'; do
    # The counter must exist and be nonzero (skip # HELP/# TYPE lines).
    val=$(grep -F "$series " "$OUT/metrics.txt" | grep -v '^#' | awk '{print $NF}' | head -1)
    case "$val" in
        ''|0) say "metric $series missing or zero (got '$val')"; exit 1 ;;
    esac
    say "  $series = $val"
done

say "== shutdown =="
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT
say "serve smoke ok: session $SID localized decrement after $n answers"
