// transformations shows the paper's Section 6 program transformations on
// two subjects: conversion of global side effects to parameters, and
// breaking of global gotos (including a goto out of a loop) into
// exit-condition parameters — while preserving behavior.
//
//	go run ./examples/transformations
package main

import (
	"fmt"
	"log"

	"gadt/internal/gadt"
	"gadt/internal/paper"
	"gadt/internal/pascal/printer"
)

func main() {
	show("global side effects (Section 6, first example)", paper.GlobalSideEffects, "")
	show("global goto from a nested procedure (second example)", paper.GlobalGoto, "")
	show("goto out of a loop (third example)", paper.LoopGoto, "")
}

func show(title, src, input string) {
	fmt.Printf("=== %s ===\n", title)
	sys, err := gadt.Load("subject.pas", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- original ---")
	fmt.Print(printer.Print(sys.Info.Program))

	res, err := sys.Transform()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- transformed ---")
	fmt.Print(printer.Print(res.Program))

	// Behavior is preserved.
	orig := sys.TraceOriginal(input)
	xform, err := sys.Trace(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- outputs: original %q, transformed %q (equal: %v) ---\n",
		orig.Output, xform.Output, orig.Output == xform.Output)

	for name, added := range res.Added {
		for _, a := range added {
			kind := "global " + a.GlobalOf
			if a.ExitCond {
				kind = "exit condition"
			}
			fmt.Printf("  %s gained %s parameter %s (%s)\n", name, a.Display, a.Name, kind)
		}
	}
	fmt.Println()
}
