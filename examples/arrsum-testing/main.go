// arrsum-testing demonstrates the T-GEN workflow of Section 2 on a
// buggy arrsum: parse the Figure 1 specification, generate the frames
// and scripts, derive executable test cases automatically from the
// match expressions, run them, and show the report database catching
// the bug class by class.
//
//	go run ./examples/arrsum-testing
package main

import (
	"fmt"
	"log"
	"sort"

	"gadt/internal/gadt"
	"gadt/internal/paper"
	"gadt/internal/pascal/interp"
	"gadt/internal/tgen"
)

// buggyArrsum sums only the first n-1 elements.
const buggyArrsum = `
program arrtest;
type
  intarray = array [1 .. 100] of integer;
var
  a: intarray;
  n, b: integer;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n - 1 do (* bug: misses the last element *)
    b := b + a[i];
end;

begin
  read(n);
  arrsum(a, n, b);
  writeln(b);
end.
`

func main() {
	spec, err := tgen.ParseSpec(paper.ArrsumSpec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== generated test frames (Figure 1) ===")
	frames := spec.Generate()
	for _, f := range frames {
		fmt.Printf("  %-28s scripts=%v\n", f, f.Scripts)
	}
	byScript := tgen.FramesByScript(frames)
	var names []string
	for s := range byScript {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		fmt.Printf("%s holds %d frame(s)\n", s, len(byScript[s]))
	}

	fmt.Println("\n=== running test cases against the buggy arrsum ===")
	sys, err := gadt.Load("buggy.pas", buggyArrsum)
	if err != nil {
		log.Fatal(err)
	}
	runner := &tgen.Runner{
		Info: sys.Info,
		Spec: spec,
		Gen:  tgen.SearchGenerator(sys.Info, spec, 5000),
		Chk: func(_ *tgen.Frame, ci *interp.CallInfo) bool {
			a, _ := ci.Ins[0].Value.AsArray()
			n, _ := ci.Ins[1].Value.AsInt()
			var want int64
			for i := int64(0); i < n && i < int64(len(a.Elems)); i++ {
				iv, _ := a.Elems[i].AsInt()
				want += iv
			}
			got, _ := ci.Outs[0].Value.AsInt()
			return got == want
		},
	}
	db, err := runner.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	var codes []string
	for code := range db.Reports {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		r := db.Reports[code]
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Printf("  %s %-34s in=%v out=%v\n", status, code, r.Inputs, r.Outputs)
	}
	pass, total := db.PassCount()
	fmt.Printf("\n%d/%d classes pass — the failing classes pinpoint the off-by-one.\n", pass, total)
}
