// Quickstart: load a buggy Pascal program, run it with tracing, and let
// the generalized algorithmic debugger localize the planted bug using a
// reference implementation as the oracle.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gadt/internal/gadt"
	"gadt/internal/paper"
)

func main() {
	// 1. Load the subject program (Figure 4 of the paper: computes the
	//    square of sum([1,2]) two ways; `decrement` has a planted bug).
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Phases 1–2: transform away side effects, run, build the
	//    execution tree and the dynamic dependence graph.
	run, err := sys.Trace("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s", run.Output) // "false" — the symptom
	fmt.Printf("execution tree has %d unit invocations\n\n", run.Tree.Size())

	// 3. Phase 3: algorithmic debugging. Here a known-good reference
	//    implementation answers the queries (an ideal user); run the
	//    interactive CLI (cmd/gadt) to answer them yourself.
	oracle, err := gadt.IntendedOracle(paper.SqrtestFixed)
	if err != nil {
		log.Fatal(err)
	}
	out, err := run.Debug(oracle, gadt.DebugConfig{Slicing: true})
	if err != nil {
		log.Fatal(err)
	}

	if out.Localized() {
		fmt.Printf("%s\n", out.Reason)
	}
	fmt.Printf("oracle questions: %d, slicing steps: %d\n", out.Questions, out.Slices)
}
