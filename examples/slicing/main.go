// slicing demonstrates both slicing engines of the system:
//
//   - static interprocedural slicing on the SDG (Figure 2 and a slice
//     across the sqrtest call graph), and
//
//   - dynamic execution-tree slicing (Figures 8 and 9).
//
//     go run ./examples/slicing
package main

import (
	"fmt"
	"log"
	"os"

	"gadt/internal/exectree"
	"gadt/internal/gadt"
	"gadt/internal/paper"
	"gadt/internal/slicing/static"
)

func main() {
	figure2()
	interprocedural()
	dynamicSlices()
}

func figure2() {
	fmt.Println("=== Figure 2: slice of program p on mul at the last line ===")
	sys, err := gadt.Load("p.pas", paper.SliceExample)
	if err != nil {
		log.Fatal(err)
	}
	mul := static.LookupVar(sys.Info, sys.Info.Main, "mul")
	sl := sys.StaticSlicer().OnVarAtEnd(sys.Info.Main, mul)
	fmt.Print(sl.Render())
	fmt.Println()
}

func interprocedural() {
	fmt.Println("=== static slice of sqrtest on computs' output r1 ===")
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		log.Fatal(err)
	}
	computs := sys.Info.LookupRoutine("computs")
	r1 := static.LookupVar(sys.Info, computs, "r1")
	sl, err := sys.StaticSlicer().OnOutput(computs, r1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", sl.Describe())
	fmt.Println("(square, comput2 and test are sliced away)")
	fmt.Println()
}

func dynamicSlices() {
	fmt.Println("=== dynamic execution-tree slices (Figures 8 and 9) ===")
	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		log.Fatal(err)
	}
	run := sys.TraceOriginal("")
	find := func(unit string) *exectree.Node {
		var out *exectree.Node
		run.Tree.Walk(func(n *exectree.Node) bool {
			if out == nil && n.Unit.Name == unit {
				out = n
			}
			return true
		})
		return out
	}
	for _, c := range []struct{ unit, output string }{
		{"computs", "r1"},
		{"partialsums", "s2"},
	} {
		sl, err := run.Recorder.SliceOnOutput(run.Tree, find(c.unit), c.output)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- slice on %s.%s keeps %d of %d nodes ---\n",
			c.unit, c.output, sl.Size(), run.Tree.Size())
		run.Tree.Render(os.Stdout, sl.Keep, nil)
	}
}
