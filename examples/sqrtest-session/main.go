// sqrtest-session replays the paper's Section 8 walkthrough end to end:
// pure algorithmic debugging + the T-GEN test database for arrsum +
// dynamic slicing, printing the same interaction session the paper
// shows (Steps 1–5), with the arrsum query answered from test reports.
//
//	go run ./examples/sqrtest-session
package main

import (
	"fmt"
	"log"

	"gadt/internal/assertion"
	"gadt/internal/debugger"
	"gadt/internal/gadt"
	"gadt/internal/paper"
	"gadt/internal/pascal/interp"
	"gadt/internal/tgen"
)

func main() {
	// The paper's premise: arrsum has already been tested with T-GEN.
	lookup, err := buildArrsumReports()
	if err != nil {
		log.Fatal(err)
	}

	sys, err := gadt.Load("sqrtest.pas", paper.Sqrtest)
	if err != nil {
		log.Fatal(err)
	}
	run := sys.TraceOriginal("") // Figure 4 is already side-effect free

	fmt.Println("=== execution tree (Figure 7) ===")
	run.Tree.Render(logWriter{}, nil, nil)

	oracle, err := gadt.IntendedOracleOriginal(paper.SqrtestFixed)
	if err != nil {
		log.Fatal(err)
	}
	out, err := run.Debug(oracle, gadt.DebugConfig{
		Slicing: true,
		Tests:   lookup,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== interaction session (Section 8) ===")
	for _, ev := range out.Transcript {
		switch ev.Kind {
		case debugger.EvQuestion:
			fmt.Printf("%s\n> %s", ev.Text, ev.Verdict)
			if ev.Detail != "" {
				fmt.Printf(", %s", ev.Detail)
			}
			fmt.Println()
		case debugger.EvTest:
			fmt.Printf("[%s was checked against the test database: %s]\n", ev.Node.Unit.Name, ev.Verdict)
		case debugger.EvSlice:
			fmt.Printf("[%s — %s]\n", ev.Text, ev.Detail)
		case debugger.EvLocalized:
			fmt.Printf("\n%s.\n", ev.Text)
		}
	}
	fmt.Printf("\nuser interactions: %d (pure algorithmic debugging needs 8)\n", out.Questions)
}

func buildArrsumReports() (*tgen.Lookup, error) {
	sys, err := gadt.Load("arrsum.pas", paper.ArrsumProgram)
	if err != nil {
		return nil, err
	}
	spec, err := tgen.ParseSpec(paper.ArrsumSpec)
	if err != nil {
		return nil, err
	}
	runner := &tgen.Runner{
		Info: sys.Info,
		Spec: spec,
		Gen:  tgen.SearchGenerator(sys.Info, spec, 5000),
		Chk: func(_ *tgen.Frame, ci *interp.CallInfo) bool {
			// Expected behavior: b = sum of the first n elements.
			check := assertion.MustParse("arrsum", "b = sum(a, n)")
			env := assertion.Env{}
			for _, b := range ci.Ins {
				env[b.Name] = b.Value
			}
			for _, b := range ci.Outs {
				env[b.Name] = b.Value
			}
			return check.Eval(env) == assertion.Holds
		},
	}
	db, err := runner.RunAll()
	if err != nil {
		return nil, err
	}
	pass, total := db.PassCount()
	fmt.Printf("T-GEN: executed %d arrsum test cases, %d passed\n\n", total, pass)
	return &tgen.Lookup{Spec: spec, DB: db}, nil
}

type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
