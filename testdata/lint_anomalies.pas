program anomalies;
{ One seeded anomaly per plint check, P001..P015. The expected findings
  live in lint_anomalies.golden; keep both in sync. Note the value
  analysis also proves the boolean parameters of maybeuninit and
  halfassign constant from their single call sites, so those `if flag`
  guards carry P012 findings on top of the seeded ones. }
label 99;
var
  total: integer;
  g: integer;
  oob: array [1 .. 3] of integer;

{ P001: u is read but no assignment ever reaches the read. }
function usebeforedef: integer;
var u: integer;
begin
  usebeforedef := u;
end;

{ P002: m is assigned only when flag holds; the other path reads junk. }
function maybeuninit(flag: boolean): integer;
var m: integer;
begin
  if flag then
    m := 1;
  maybeuninit := m;
end;

{ P003: the first store to d is overwritten before anyone looks at it. }
procedure deadstore(var r: integer);
var d: integer;
begin
  d := 1;
  d := 2;
  r := d;
end;

{ P004: never is declared and never touched; w is written, never read. }
procedure unusedvars(var r: integer);
var never, w: integer;
begin
  w := 5;
  r := 3;
end;

{ P005: b plays no part in the body. }
procedure unusedparam(a, b: integer; var r: integer);
begin
  r := a;
end;

{ P006: the goto jumps straight over the assignment of 99. }
procedure unreach(var r: integer);
label 10;
begin
  goto 10;
  r := 99;
  10: r := 1;
end;

{ P007: nobody calls orphan. }
procedure orphan(x: integer);
begin
  writeln(x);
end;

{ P008 (direct): called below as swapadd(total, total). }
procedure swapadd(var a, b: integer);
begin
  a := a + b;
  b := b - a;
end;

{ P008 (nested, two calls deep): outer passes its var formal on to inner,
  and inner also reads the global g directly — so outer(g) below aliases
  g with outer's formal y. }
procedure inner(var x: integer);
begin
  x := g + 1;
end;

procedure outer(var y: integer);
begin
  inner(y);
end;

{ P009 (error): the result is never assigned at all. }
function noassign(x: integer): integer;
begin
  writeln(x);
end;

{ P009 (warning): only one branch assigns the result. }
function halfassign(flag: boolean): integer;
begin
  if flag then
    halfassign := 1;
end;

{ P010: the goto enters the for loop, bypassing the counter init. }
procedure jumpin(n: integer);
label 20;
var i, s: integer;
begin
  s := 0;
  if n > 10 then
    goto 20;
  for i := 1 to n do
  begin
    20: s := s + 1;
  end;
  writeln(s);
end;

{ P011 (direct): the goto abandons bailout's own frame. }
procedure bailout(n: integer);
begin
  if n < 0 then
    goto 99;
  writeln(n);
end;

{ P011 (inherited): wrapper can only exit non-locally through bailout. }
procedure wrapper(n: integer);
begin
  bailout(n);
end;

{ P012: the guard can never hold — debug never leaves 0. }
procedure constcond(var r: integer);
var debug: integer;
begin
  debug := 0;
  if debug > 0 then
    r := r + 1;
end;

{ P013: the index is pinned two past the end of the array. }
procedure outofrange;
var i: integer;
begin
  i := 5;
  oob[i] := 1;
  writeln(oob[1]);
end;

{ P014: the divisor is provably zero when the division runs. }
function divzero(n: integer): integer;
var z: integer;
begin
  z := 0;
  divzero := n div z;
end;

{ P015: the second store rewrites the 4 that k already holds, yet the
  store is live — P003 stays silent. }
procedure samestore(var r: integer);
var k: integer;
begin
  k := 4;
  r := r + k;
  k := 2 + 2;
  r := r + k;
end;

begin
  total := usebeforedef + maybeuninit(true);
  deadstore(total);
  unusedvars(total);
  unusedparam(total, 2, total);
  unreach(total);
  swapadd(total, total);
  g := 0;
  outer(g);
  total := total + noassign(1) + halfassign(false);
  jumpin(total);
  wrapper(total);
  constcond(total);
  outofrange;
  total := total + divzero(2);
  samestore(total);
  99: writeln(total, g);
end.
