program arrtest;
type
  intarray = array [1 .. 100] of integer;
var
  a: intarray;
  n, b: integer;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n do
    b := b + a[i];
end;

begin
  read(n);
  arrsum(a, n, b);
  writeln(b);
end.
