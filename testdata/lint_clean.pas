program clean;
{ Exercises value and var parameters, loops, nested calls and output
  parameters without a single dataflow anomaly: plint must stay silent. }
var
  x, y: integer;

function gcd(a, b: integer): integer;
var r: integer;
begin
  while b <> 0 do
  begin
    r := a mod b;
    a := b;
    b := r;
  end;
  gcd := a;
end;

procedure swap(var a, b: integer);
var t: integer;
begin
  t := a;
  a := b;
  b := t;
end;

{ An output-only var parameter: reading total after the call must not be
  flagged, even though minmax both writes and (afterwards) reads it. }
procedure minmax(a, b: integer; var lo, hi: integer);
begin
  lo := a;
  hi := b;
  if lo > hi then
    swap(lo, hi);
end;

begin
  read(x, y);
  if x < y then
    swap(x, y);
  minmax(x, y, x, y);
  writeln(gcd(x, y));
end.
