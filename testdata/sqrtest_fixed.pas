program main;
type
  intarray = array [1 .. 10] of integer;
var
  isok: boolean;

procedure test(r1, r2: integer; var isok: boolean);
begin
  isok := r1 = r2;
end;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n do
    b := b + a[i];
end;

procedure square(y: integer; var r2: integer);
begin
  r2 := y * y;
end;

procedure comput2(y: integer; var r2: integer);
begin
  square(y, r2);
end;

procedure add(s1, s2: integer; var r1: integer);
begin
  r1 := s1 + s2;
end;

function decrement(y: integer): integer;
begin
  decrement := y - 1;
end;

function increment(y: integer): integer;
begin
  increment := y + 1;
end;

procedure sum2(y: integer; var s2: integer);
begin
  s2 := decrement(y) * y div 2;
end;

procedure sum1(y: integer; var s1: integer);
begin
  s1 := y * increment(y) div 2;
end;

procedure partialsums(y: integer; var s1, s2: integer);
begin
  sum1(y, s1);
  sum2(y, s2);
end;

procedure comput1(y: integer; var r1: integer);
var s1, s2: integer;
begin
  partialsums(y, s1, s2);
  add(s1, s2, r1);
end;

procedure computs(y: integer; var r1, r2: integer);
begin
  comput1(y, r1);
  comput2(y, r2);
end;

procedure sqrtest(ary: intarray; n: integer; var isok: boolean);
var r1, r2, t: integer;
begin
  arrsum(ary, n, t);
  computs(t, r1, r2);
  test(r1, r2, isok);
end;

begin
  sqrtest([1, 2], 2, isok);
  writeln(isok);
end.
