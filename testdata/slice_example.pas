program p;
var x, y, z, sum, mul: integer;
begin
  read(x, y);
  mul := 0;
  sum := 0;
  if x <= 1 then
    sum := x + y
  else begin
    read(z);
    mul := x * y;
  end;
  writeln(sum, mul);
end.
