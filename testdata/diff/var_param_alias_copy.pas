{ pdiff minimized counterexample
  subject: var_param_alias_copy
  stages: loops+globals
  kind: output
  input:
  detail: a referenced-only var parameter aliasing a global mutated by the extracted loop unit was lifted as a value copy, which went stale; by-reference formals must count as var-bound
}
program alias;
var
  g, h: integer;
procedure p(var a: integer);
begin
  for g := 1 downto 0 do begin
    h := a;
  end;
end;
begin
  g := 0;
  h := 0;
  p(g);
  writeln(g, ' ', h);
end.
