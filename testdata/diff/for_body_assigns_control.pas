{ pdiff minimized counterexample
  subject: for_body_assigns_control
  stages: loops+gotos+globals
  kind: status
  input:
  detail: a body assignment to the control variable made the extracted loop unit recurse forever; a Pascal for statement fixes its trip count up front
}
program forreset;
var
  i, n: integer;
begin
  n := 0;
  for i := 0 to 1 do begin
    i := 0;
    n := n + 1;
  end;
  writeln(i, ' ', n);
end.
