{ pdiff minimized counterexample
  subject: for_final_value
  stages: loops+globals
  kind: output
  input:
  detail: loop extraction drove the recursion off the control variable, leaving it limit+1 after the loop; execFor leaves the last iteration value
}
program forfinal;
var
  i: integer;
begin
  i := 0;
  for i := 1 to 2 do begin
    i := i;
  end;
  writeln(i);
end.
