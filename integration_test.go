// Integration tests exercising the full GADT pipeline — transformation,
// tracing, dynamic slicing, test lookup and debugging — on subjects well
// beyond the paper's four-page programs.
package gadt_test

import (
	"fmt"
	"strings"
	"testing"

	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/gadt"
	"gadt/internal/paper"
	"gadt/internal/progen"
)

// TestPipelineMatrix runs the complete pipeline over a grid of synthetic
// program shapes: the transformed program must behave like the original,
// and GADT must localize the planted bug with no more questions than
// pure algorithmic debugging.
func TestPipelineMatrix(t *testing.T) {
	shapes := []progen.Config{
		{Depth: 2, Fanout: 2},
		{Depth: 3, Fanout: 2, BugPath: []int{1, 0, 1}},
		{Depth: 4, Fanout: 2, BugPath: []int{0, 1, 1, 0}},
		{Depth: 3, Fanout: 3, BugPath: []int{2, 2, 2}},
		{Depth: 2, Fanout: 2, Style: progen.Globals},
		{Depth: 3, Fanout: 2, Style: progen.Globals, BugPath: []int{1, 1, 1}},
		{Depth: 2, Fanout: 2, Loops: true},
		{Depth: 3, Fanout: 2, Style: progen.Globals, Loops: true, BugPath: []int{1, 0, 0}},
	}
	for _, shape := range shapes {
		shape := shape
		name := fmt.Sprintf("d%d_f%d_g%v_l%v", shape.Depth, shape.Fanout, shape.Style == progen.Globals, shape.Loops)
		t.Run(name, func(t *testing.T) {
			p := progen.Generate(shape)
			sys, err := gadt.Load("subject.pas", p.Buggy)
			if err != nil {
				t.Fatal(err)
			}
			orig := sys.TraceOriginal("")
			run, err := sys.Trace("")
			if err != nil {
				t.Fatal(err)
			}
			if orig.RunErr != nil || run.RunErr != nil {
				t.Fatalf("runtime errors: %v / %v", orig.RunErr, run.RunErr)
			}
			if orig.Output != run.Output {
				t.Fatalf("transformation changed behavior: %q vs %q", orig.Output, run.Output)
			}
			oracle, err := gadt.IntendedOracle(p.Fixed)
			if err != nil {
				t.Fatal(err)
			}
			pure, err := run.Debug(oracle, gadt.DebugConfig{})
			if err != nil {
				t.Fatal(err)
			}
			full, err := run.Debug(oracle, gadt.DebugConfig{Slicing: true})
			if err != nil {
				t.Fatal(err)
			}
			for which, out := range map[string]*debugger.Outcome{"pure": pure, "gadt": full} {
				if !out.Localized() {
					t.Fatalf("%s: not localized", which)
				}
				got := out.Bug.Unit.Name
				if got != p.BuggyUnit && !strings.HasPrefix(got, p.BuggyUnit+"_loop") {
					t.Errorf("%s: localized %s, want %s", which, got, p.BuggyUnit)
				}
			}
			if full.Questions > pure.Questions {
				t.Errorf("slicing increased questions: %d > %d", full.Questions, pure.Questions)
			}
		})
	}
}

// TestDeepProgramScales runs a 127-unit subject through the pipeline.
func TestDeepProgramScales(t *testing.T) {
	p := progen.Generate(progen.Config{Depth: 6, Fanout: 2, BugPath: []int{1, 0, 1, 0, 1, 0}})
	sys, err := gadt.Load("deep.pas", p.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Trace("")
	if err != nil {
		t.Fatal(err)
	}
	if run.Tree.Size() < 100 {
		t.Fatalf("tree size = %d, expected a large trace", run.Tree.Size())
	}
	oracle, err := gadt.IntendedOracle(p.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Debug(oracle, gadt.DebugConfig{Slicing: true, Strategy: debugger.DivideAndQuery})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != p.BuggyUnit {
		t.Fatalf("bug = %v, want %s", out.Bug, p.BuggyUnit)
	}
	// Divide-and-query on a ~128-node tree should stay near log2 scale.
	if out.Questions > 20 {
		t.Errorf("questions = %d, expected close to log2(%d)", out.Questions, run.Tree.Size())
	}
}

// TestAllPaperProgramsThroughPipeline is the everything-at-once check on
// the paper's own subjects.
func TestAllPaperProgramsThroughPipeline(t *testing.T) {
	subjects := map[string]struct {
		src, input string
	}{
		"sqrtest":    {paper.Sqrtest, ""},
		"fixed":      {paper.SqrtestFixed, ""},
		"pqr":        {paper.PQR, ""},
		"slice":      {paper.SliceExample, "2 3 4"},
		"globals":    {paper.GlobalSideEffects, ""},
		"globalGoto": {paper.GlobalGoto, ""},
		"loopGoto":   {paper.LoopGoto, ""},
		"arrsum":     {paper.ArrsumProgram, "0 "},
	}
	for name, s := range subjects {
		s := s
		t.Run(name, func(t *testing.T) {
			sys, err := gadt.Load(name+".pas", s.src)
			if err != nil {
				t.Fatal(err)
			}
			orig := sys.TraceOriginal(s.input)
			run, err := sys.Trace(s.input)
			if err != nil {
				t.Fatal(err)
			}
			if orig.RunErr != nil || run.RunErr != nil {
				t.Fatalf("runtime errors: %v / %v", orig.RunErr, run.RunErr)
			}
			if orig.Output != run.Output {
				t.Errorf("outputs differ: %q vs %q", orig.Output, run.Output)
			}
			// Every traced node must expose a usable label and outputs.
			run.Tree.Walk(func(n *exectree.Node) bool {
				if n.Label(nil) == "" {
					t.Errorf("empty label for %s", n.Unit.Name)
				}
				return true
			})
		})
	}
}
